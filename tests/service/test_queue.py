"""JobQueue: coalescing, admission control, priority, retry, drain.

Pure event-loop unit tests — no HTTP, no simulations: results are stub
dicts, which is all the queue ever sees.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import JobNotFoundError, ServiceOverloadedError
from repro.service import JobQueue
from tests.service.conftest import small_request


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_identical_submits_share_one_execution(self):
        async def body():
            queue = JobQueue()
            primary, coalesced = await queue.submit(small_request(), "k1")
            assert not coalesced
            followers = [
                (await queue.submit(small_request(), "k1"))[0]
                for _ in range(7)
            ]
            assert all(f.coalesced_into == primary.job_id for f in followers)
            assert queue.depth == 1  # one execution, not eight
            assert queue.metrics.accepted == 1
            assert queue.metrics.coalesced == 7

            (popped,) = await queue.next_batch()
            assert popped is primary
            # Coalescing covers *running* jobs too: a submit that races the
            # execution still attaches instead of re-simulating.
            late, late_coalesced = await queue.submit(small_request(), "k1")
            assert late_coalesced
            assert late.state == "running"

            await queue.complete(primary, {"cycles": 42}, "worker")
            for record in [*followers, late]:
                assert record.state == "done"
                assert record.result == {"cycles": 42}
            assert queue.metrics.completed == 9  # primary + 8 followers
            return True

        assert run(body())

    def test_completion_frees_the_key(self):
        async def body():
            queue = JobQueue()
            primary, _ = await queue.submit(small_request(), "k1")
            await queue.next_batch()
            await queue.complete(primary, {}, "worker")
            record, coalesced = await queue.submit(small_request(), "k1")
            assert not coalesced  # a finished key starts a fresh execution
            assert record.job_id != primary.job_id
            return True

        assert run(body())

    def test_failure_fans_out_to_followers(self):
        async def body():
            queue = JobQueue()
            primary, _ = await queue.submit(small_request(), "k1")
            follower, _ = await queue.submit(small_request(), "k1")
            await queue.next_batch()
            await queue.fail(primary, "boom")
            assert follower.state == "failed"
            assert follower.error == "boom"
            assert queue.metrics.failed == 2
            return True

        assert run(body())


class TestAdmissionControl:
    def test_full_queue_rejects_new_keys_but_coalesces(self):
        async def body():
            queue = JobQueue(max_depth=1)
            await queue.submit(small_request(), "k1")
            with pytest.raises(ServiceOverloadedError):
                await queue.submit(small_request(dataset="WP"), "k2")
            assert queue.metrics.rejected == 1
            # Coalescing submits add no work: always admitted.
            _, coalesced = await queue.submit(small_request(), "k1")
            assert coalesced
            return True

        assert run(body())

    def test_dispatch_frees_admission_slots(self):
        async def body():
            queue = JobQueue(max_depth=1)
            primary, _ = await queue.submit(small_request(), "k1")
            await queue.next_batch()  # k1 now running, not queued
            record, coalesced = await queue.submit(small_request(dataset="WP"), "k2")
            assert not coalesced  # in-flight work does not count against depth
            assert queue.depth == 1
            assert queue.in_flight == 1
            await queue.complete(primary, {}, "worker")
            await queue.complete((await queue.next_batch())[0], {}, "worker")
            return True

        assert run(body())

    def test_overload_error_is_retryable(self):
        assert ServiceOverloadedError.retryable
        assert ServiceOverloadedError.exit_code == 75


class TestPriority:
    def test_higher_priority_pops_first(self):
        async def body():
            queue = JobQueue()
            low, _ = await queue.submit(small_request(priority=0), "k-low")
            high, _ = await queue.submit(small_request(priority=5), "k-high")
            mid, _ = await queue.submit(small_request(priority=1), "k-mid")
            batch = await queue.next_batch()
            assert [r.job_id for r in batch] == \
                [high.job_id, mid.job_id, low.job_id]
            for record in batch:
                await queue.complete(record, {}, "worker")
            return True

        assert run(body())

    def test_fifo_within_a_priority(self):
        async def body():
            queue = JobQueue()
            first, _ = await queue.submit(small_request(), "k1")
            second, _ = await queue.submit(small_request(dataset="WP"), "k2")
            batch = await queue.next_batch()
            assert [r.job_id for r in batch] == [first.job_id, second.job_id]
            for record in batch:
                await queue.complete(record, {}, "worker")
            return True

        assert run(body())

    def test_max_batch_caps_the_pop(self):
        async def body():
            queue = JobQueue()
            for i in range(5):
                await queue.submit(small_request(priority=i), f"k{i}")
            batch = await queue.next_batch(max_batch=2)
            assert len(batch) == 2
            assert queue.depth == 3
            return True

        assert run(body())


class TestRetry:
    def test_requeue_redispatches_with_attempt_count(self):
        async def body():
            queue = JobQueue()
            record, _ = await queue.submit(small_request(), "k1")
            (popped,) = await queue.next_batch()
            assert popped.attempts == 1
            await queue.requeue(popped)
            assert popped.state == "queued"
            (again,) = await queue.next_batch()
            assert again is record
            assert again.attempts == 2
            assert queue.metrics.retries == 1
            await queue.complete(again, {}, "worker")
            return True

        assert run(body())


class TestLookupAndRetention:
    def test_unknown_job_raises(self):
        queue = JobQueue()
        with pytest.raises(JobNotFoundError):
            queue.get("job-404-deadbeef")
        assert JobNotFoundError.exit_code == 66

    def test_finished_records_evict_oldest_first(self):
        async def body():
            queue = JobQueue(retain_finished=2)
            records = []
            for i in range(3):
                record, _ = await queue.submit(small_request(), f"k{i}")
                records.append(record)
            batch = await queue.next_batch()
            for record in batch:
                await queue.complete(record, {}, "worker")
            with pytest.raises(JobNotFoundError):
                queue.get(records[0].job_id)
            assert queue.get(records[2].job_id).state == "done"
            return True

        assert run(body())


class TestDrainAndClose:
    def test_drain_rejects_then_waits_for_inflight(self):
        async def body():
            queue = JobQueue()
            primary, _ = await queue.submit(small_request(), "k1")
            await queue.next_batch()
            drain = asyncio.create_task(queue.drain())
            await asyncio.sleep(0)  # let drain() flip the flag
            assert queue.draining
            with pytest.raises(ServiceOverloadedError):
                await queue.submit(small_request(dataset="WP"), "k2")
            assert not drain.done()  # still waiting on the in-flight job
            await queue.complete(primary, {"cycles": 1}, "worker")
            await asyncio.wait_for(drain, timeout=5)
            assert primary.state == "done"  # accepted work was not lost
            return True

        assert run(body())

    def test_close_unblocks_next_batch_with_empty(self):
        async def body():
            queue = JobQueue()
            waiter = asyncio.create_task(queue.next_batch())
            await asyncio.sleep(0)
            await queue.close()
            assert await asyncio.wait_for(waiter, timeout=5) == []
            return True

        assert run(body())

"""Scheduler: store fast path, grouping, retry-then-fail settlement.

The dispatch tier is exercised with a monkeypatched worker body where the
real simulation is irrelevant — a single-payload ``run_tasks`` call runs
inline in the calling process, so the patch is visible to it.  End-to-end
compute (real workers, real results) is covered by ``test_server.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro.service.scheduler as scheduler_mod
from repro.service import (
    JobQueue,
    Scheduler,
    SchedulerConfig,
    ServiceMetrics,
)
from repro.store import ArtifactStore
from tests.service.conftest import small_request


def run(coro):
    return asyncio.run(coro)


def make_parts(store=None, **config):
    metrics = ServiceMetrics()
    queue = JobQueue(metrics=metrics)
    config.setdefault("batch_window", 0.0)
    scheduler = Scheduler(
        queue, metrics, store=store, config=SchedulerConfig(**config)
    )
    return queue, scheduler, metrics


async def serve_one(queue, scheduler, request, key):
    """Submit one job, run the scheduler until the queue drains."""
    runner = asyncio.create_task(scheduler.run())
    record, _ = await queue.submit(request, key)
    await queue.drain()
    await queue.close()
    await asyncio.wait_for(runner, timeout=60)
    return record


class TestStoreFastPath:
    def test_prewarmed_key_is_served_without_compute(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        request = small_request()
        key = request.store_key()

        from repro.harness.runner import Runner

        result = Runner(pr_iterations=request.pr_iterations).run(
            request.engine, request.algorithm, request.dataset,
            request.config(),
        )
        from repro.store.serialize import run_result_to_json

        payload = run_result_to_json(result)
        store.put_bytes(
            "results", key, json.dumps(payload).encode("utf-8")
        )

        queue, scheduler, metrics = make_parts(store=store)
        record = run(serve_one(queue, scheduler, request, key))
        assert record.state == "done"
        assert record.served_from == "store"
        assert record.result == payload
        assert metrics.store_hits == 1
        assert metrics.computed == 0  # no simulation ran

    def test_undecodable_store_entry_falls_back_to_compute(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        request = small_request()
        key = request.store_key()
        store.put_bytes(
            "results", key, json.dumps({"schema": "from-the-future"}).encode()
        )
        queue, scheduler, metrics = make_parts(store=store)
        record = run(serve_one(queue, scheduler, request, key))
        assert record.state == "done"
        assert record.served_from in ("worker", "inline")
        assert metrics.store_hits == 0
        assert metrics.computed == 1

    def test_no_store_always_computes(self):
        queue, scheduler, metrics = make_parts(store=None)
        record = run(serve_one(queue, scheduler, small_request(), "k1"))
        assert record.state == "done"
        assert metrics.computed == 1
        # The result travels serialized even without a store.
        from repro.store.serialize import run_result_from_json

        assert run_result_from_json(record.result).cycles > 0


class TestGrouping:
    def test_same_resources_land_in_one_group(self):
        queue, scheduler, _ = make_parts()

        async def body():
            records = []
            for algorithm, key in (("BFS", "k1"), ("CC", "k2"), ("BFS", "k3")):
                record, _ = await queue.submit(
                    small_request(algorithm=algorithm,
                                  dataset="WP" if key == "k3" else "FS"),
                    key,
                )
                records.append(record)
            return scheduler._plan_groups(records)

        groups = run(body())
        # FS/BFS and FS/CC share GlaResources; WP is its own group.
        # Largest group first (the LPT-style ordering).
        assert [len(group) for group in groups] == [2, 1]
        assert {r.request.dataset for r in groups[0]} == {"FS"}


class TestRetrySettlement:
    def test_failing_job_retries_then_fails(self, monkeypatch):
        calls = []

        def flaky_group(payload):
            reports = []
            for unit in payload.jobs:
                calls.append(unit.job_id)
                reports.append({
                    "job_id": unit.job_id,
                    "ok": False,
                    "seconds": 0.0,
                    "error": "RuntimeError: injected",
                })
            return reports

        monkeypatch.setattr(scheduler_mod, "_execute_group", flaky_group)
        queue, scheduler, metrics = make_parts(job_retries=1)
        record = run(serve_one(queue, scheduler, small_request(), "k1"))
        assert record.state == "failed"
        assert record.error == "RuntimeError: injected"
        assert record.attempts == 2  # first try + one retry
        assert len(calls) == 2
        assert metrics.retries == 1
        assert metrics.failed == 1

    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        attempts = []

        def flaky_once(payload):
            reports = []
            for unit in payload.jobs:
                attempts.append(unit.job_id)
                if len(attempts) == 1:
                    reports.append({
                        "job_id": unit.job_id, "ok": False, "seconds": 0.0,
                        "error": "OSError: transient",
                    })
                else:
                    reports.append({
                        "job_id": unit.job_id, "ok": True, "seconds": 0.0,
                        "result": {"recovered": True},
                    })
            return reports

        monkeypatch.setattr(scheduler_mod, "_execute_group", flaky_once)
        queue, scheduler, metrics = make_parts(job_retries=1)
        record = run(serve_one(queue, scheduler, small_request(), "k1"))
        assert record.state == "done"
        assert record.result == {"recovered": True}
        assert metrics.retries == 1
        assert metrics.computed == 1

    def test_scheduler_crash_settles_records(self, monkeypatch):
        """An unexpected scheduler exception must not strand jobs in
        ``running`` — drain depends on every record reaching a terminal
        state."""

        async def explode(records):
            raise RuntimeError("planner exploded")

        queue, scheduler, _ = make_parts(job_retries=0)
        monkeypatch.setattr(scheduler, "_dispatch", explode)
        record = run(serve_one(queue, scheduler, small_request(), "k1"))
        assert record.state == "failed"
        assert "planner exploded" in record.error


@pytest.mark.parametrize("timeout, expect_alarm", [(None, False), (5.0, True)])
def test_run_with_timeout_uses_alarm_only_on_main_thread(
    monkeypatch, timeout, expect_alarm
):
    import signal

    armed = []
    real_setitimer = signal.setitimer

    def spy(which, seconds):
        armed.append(seconds)
        return real_setitimer(which, 0.0)

    monkeypatch.setattr(signal, "setitimer", spy)

    class FakeRunner:
        def run(self, *args, **kwargs):
            return "ran"

    result = scheduler_mod._run_with_timeout(
        FakeRunner(), small_request(), timeout
    )
    assert result == "ran"
    assert bool(armed) == expect_alarm

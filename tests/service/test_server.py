"""End-to-end service tests over real HTTP: coalescing, fast path,
admission control, error mapping, drain.

These run full simulations through a live ``SimulationService`` — the
workload is the cheapest one in the suite, and the in-process dataset memo
keeps repeats fast.
"""

from __future__ import annotations

import concurrent.futures
import json
import time

import pytest

import repro
from repro.errors import JobNotFoundError, ServiceError, ServiceOverloadedError
from repro.service import SchedulerConfig
from tests.service.conftest import small_request


class TestCoalescingEndToEnd:
    def test_eight_identical_submits_compute_once(self, make_service):
        # Warm the dataset memo so all eight submits key fast — the service
        # shares this process, which widens the coalescing window.
        small_request().store_key()
        # A generous batch window keeps the primary queued while the
        # stragglers arrive.
        service, client = make_service(
            scheduler=SchedulerConfig(batch_window=0.25)
        )
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            jobs = list(pool.map(
                lambda _: client.submit(small_request()), range(8)
            ))
        finished = [client.wait(job["job_id"], timeout=120) for job in jobs]

        assert all(job["state"] == "done" for job in finished)
        results = {json.dumps(job["result"], sort_keys=True)
                   for job in finished}
        assert len(results) == 1  # every caller saw the same answer

        stats = client.stats()
        assert stats["submitted"] == 8
        assert stats["accepted"] == 1
        assert stats["coalesced"] == 7
        assert stats["computed"] == 1  # exactly one simulation ran
        assert stats["completed"] == 8
        coalesced_into = {job["coalesced_into"] for job in finished}
        assert None in coalesced_into  # the primary
        assert len(coalesced_into - {None}) == 1  # all onto one primary


class TestStoreFastPathEndToEnd:
    def test_resubmission_is_served_from_store(self, tmp_path, make_service):
        service, client = make_service(cache_dir=str(tmp_path / "cache"))
        first = client.run(small_request(), timeout=120)
        assert first["served_from"] in ("worker", "inline")

        second = client.run(small_request(), timeout=120)
        assert second["served_from"] == "store"
        assert second["result"] == first["result"]

        stats = client.stats()
        assert stats["store_hits"] == 1
        assert stats["computed"] == 1
        assert stats["store_hit_ratio"] == pytest.approx(0.5)


class TestSpecFidelityEndToEnd:
    def test_non_default_preprocessing_round_trips_byte_identical(
        self, make_service
    ):
        """A job carrying non-default ``w_min``/``d_max`` and a pipeline
        stage executes through the service and returns exactly what the
        equivalent local ``repro run`` computes — the spec travels to the
        worker verbatim, so no field is silently dropped on the wire."""
        from repro.harness.runner import Runner
        from repro.service.client import ServiceClient
        from repro.store.serialize import run_result_to_json

        request = small_request(
            w_min=5, d_max=8, stages=["locality-reorder"]
        )
        service, client = make_service()
        job = client.run(request, timeout=120)
        served = ServiceClient.run_result(job)

        local = Runner(cache_dir=None).run(request.spec)
        assert run_result_to_json(served) == run_result_to_json(local)

    def test_spec_wire_format_round_trips_the_request(self, make_service):
        """What /jobs echoes back parses to the submitted request."""
        from repro.service.jobs import JobRequest

        request = small_request(w_min=5, stages=["identity"], priority=2)
        service, client = make_service()
        job = client.submit(request)
        assert JobRequest.from_json(job["request"]) == request
        client.wait(job["job_id"], timeout=120)


class TestAdmissionEndToEnd:
    def test_full_queue_rejects_with_retryable_429(self, make_service):
        service, client = make_service(max_depth=0)
        with pytest.raises(ServiceOverloadedError):
            client.submit(small_request())
        assert client.stats()["rejected"] == 1
        assert client.health()["status"] == "ok"  # rejection is not death


class TestErrorMapping:
    def test_unknown_job_maps_to_job_not_found(self, make_service):
        _, client = make_service()
        with pytest.raises(JobNotFoundError):
            client.status("job-404-cafef00d")

    @pytest.mark.parametrize(
        "method, path, payload",
        [
            ("POST", "/jobs", {"engine": "NoSuchEngine", "algorithm": "BFS",
                               "dataset": "FS"}),
            ("POST", "/jobs", {"bogus": 1}),
        ],
    )
    def test_bad_request_maps_to_400(self, make_service, method, path, payload):
        _, client = make_service()
        with pytest.raises(ServiceError, match="HTTP 400"):
            client._request(method, path, payload)

    def test_unknown_route_and_wrong_method(self, make_service):
        _, client = make_service()
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("GET", "/nope")
        with pytest.raises(ServiceError, match="HTTP 405"):
            client._request("GET", "/jobs", None)


class TestHealthz:
    def test_reports_version_and_gauges(self, make_service):
        _, client = make_service()
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        assert health["uptime_seconds"] >= 0


class TestDrain:
    def test_accepted_jobs_survive_drain(self, make_service):
        """The SIGTERM contract: admitted work finishes, nothing is lost."""
        service, client = make_service()
        job = client.submit(small_request())
        service.request_drain()
        deadline = time.monotonic() + 120
        record = service.queue.get(job["job_id"])
        while not record.finished and time.monotonic() < deadline:
            time.sleep(0.05)
        assert record.state == "done"
        assert record.result is not None
        # Once draining/stopped, new submissions are refused (429 while
        # draining, connection refused after close — one error vocabulary).
        with pytest.raises(ServiceError):
            client.submit(small_request())

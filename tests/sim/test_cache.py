"""Tests for the set-associative LRU cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache


def make_cache(lines: int = 4, assoc: int = 2, line_size: int = 64) -> Cache:
    return Cache(lines * line_size, assoc, line_size)


def test_miss_then_hit():
    cache = make_cache()
    assert cache.access(0) is False
    assert cache.access(0) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    # 2-way, 2 sets: lines 0 and 2 map to set 0; 1 and 3 to set 1.
    cache = make_cache(lines=4, assoc=2)
    cache.access(0)
    cache.access(2)
    cache.access(4)  # set 0 full -> evicts line 0 (LRU)
    assert not cache.contains(0)
    assert cache.contains(2)
    assert cache.contains(4)


def test_hit_refreshes_lru():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0)
    cache.access(2)
    cache.access(0)  # 0 becomes MRU
    cache.access(4)  # evicts 2, not 0
    assert cache.contains(0)
    assert not cache.contains(2)


def test_dirty_writeback_counted():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0, write=True)
    cache.access(2)
    cache.access(4)  # evicts dirty line 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0)
    cache.access(2)
    cache.access(4)
    assert cache.stats.writebacks == 0
    assert cache.stats.evictions == 1


def test_invalidate():
    cache = make_cache()
    cache.access(0, write=True)
    assert cache.invalidate(0) is True
    assert not cache.contains(0)
    assert cache.invalidate(0) is False
    # A dirty invalidated line must not later count as a writeback victim.
    cache.access(0)
    cache.access(2)
    cache.access(4)
    assert cache.stats.writebacks == 0


def test_contains_does_not_touch_lru_or_stats():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0)
    cache.access(2)
    hits_before = cache.stats.hits
    cache.contains(0)  # must NOT refresh LRU position
    cache.access(4)  # evicts 0 (still LRU)
    assert not cache.contains(0)
    assert cache.stats.hits == hits_before


def test_fill_returns_victim():
    cache = make_cache(lines=4, assoc=2)
    cache.fill(0)
    cache.fill(2)
    victim = cache.fill(4)
    assert victim == 0


def test_fill_present_line_promotes():
    cache = make_cache(lines=4, assoc=2)
    cache.fill(0)
    cache.fill(2)
    assert cache.fill(0) is None  # refill, no eviction
    cache.fill(4)  # now evicts 2
    assert cache.contains(0)


def test_lookup_counts_stats():
    cache = make_cache()
    assert cache.lookup(0) is False
    cache.fill(0)
    assert cache.lookup(0) is True


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        Cache(100, 3, 64)  # not divisible


def test_hit_rate_and_reset():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == pytest.approx(0.5)
    cache.reset_stats()
    assert cache.stats.accesses == 0
    assert cache.contains(0)  # contents survive a stats reset


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
@settings(max_examples=50, deadline=None)
def test_capacity_invariant(accesses):
    cache = make_cache(lines=8, assoc=4)
    for line in accesses:
        cache.access(line)
    resident = cache.resident_lines()
    assert len(resident) <= 8
    assert len(set(resident)) == len(resident)
    # Set mapping invariant: each resident line maps to its set.
    for i, ways in enumerate(cache._sets):
        for line in ways:
            assert line % cache.num_sets == i


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_most_recent_access_always_resident(accesses):
    cache = make_cache(lines=8, assoc=4)
    for line in accesses:
        cache.access(line)
    assert cache.contains(accesses[-1])


# -- stat-free probes (dirty propagation support) -----------------------------


def test_victim_of_predicts_fill_eviction():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0)
    cache.access(2)  # set 0 now full: 0 is LRU
    assert cache.victim_of(4) == 0
    cache.fill(4)
    assert not cache.contains(0)


def test_victim_of_none_when_no_eviction():
    cache = make_cache(lines=4, assoc=2)
    assert cache.victim_of(0) is None  # set has free ways
    cache.access(0)
    assert cache.victim_of(0) is None  # already resident


def test_probes_do_not_touch_lru_or_stats():
    cache = make_cache(lines=4, assoc=2)
    cache.access(0, write=True)
    cache.access(2)  # LRU order in set 0: [0, 2]
    before = (cache.stats.accesses, cache.stats.hits, cache.stats.misses)
    cache.victim_of(4)
    cache.is_dirty(0)
    cache.dirty_lines()
    cache.max_set_occupancy()
    assert (cache.stats.accesses, cache.stats.hits,
            cache.stats.misses) == before
    cache.fill(4)  # probes must not have promoted 0: it is still the LRU
    assert not cache.contains(0)
    assert cache.contains(2)


def test_mark_dirty_resident_line_only():
    cache = make_cache()
    cache.access(0)
    assert not cache.is_dirty(0)
    assert cache.mark_dirty(0) is True
    assert cache.is_dirty(0)
    assert cache.mark_dirty(64) is False  # absent line: caller handles it
    assert not cache.is_dirty(64)


def test_dirty_lines_sorted_snapshot():
    cache = make_cache(lines=8, assoc=2)
    for line in (5, 1, 3):
        cache.access(line, write=True)
    cache.access(2)
    assert cache.dirty_lines() == [1, 3, 5]


def test_max_set_occupancy_within_associativity():
    cache = make_cache(lines=4, assoc=2)
    assert cache.max_set_occupancy() == 0
    cache.access(0)
    assert cache.max_set_occupancy() == 1
    cache.access(2)
    cache.access(4)
    assert cache.max_set_occupancy() == 2

"""Differential test: fast O(1) Cache vs the reference list-based model.

Drives long randomized probe sequences through ``repro.sim.cache.Cache``
and ``repro.sim.cache_ref.Cache`` in lockstep and asserts every observable
is identical after every operation batch: return values, hit/miss/eviction/
writeback counters, victim predictions, dirty bits, residency order, and
set occupancy.  The fast model is only allowed to exist because it never
diverges from the reference.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.cache import Cache as FastCache
from repro.sim.cache_ref import Cache as RefCache

# (size_bytes, associativity, line_size) — small and highly contended so a
# few thousand ops exercise eviction and reordering constantly, including
# a direct-mapped and a single-set (fully associative) shape.
GEOMETRIES = [
    (1024, 4, 64),  # 4 sets x 4 ways: the scaled_config L1 shape
    (512, 1, 64),   # direct-mapped
    (512, 8, 64),   # single set, fully associative
    (8192, 8, 64),  # the scaled_config L2 shape
]

OPS = ("lookup", "fill", "fill_dirty", "access", "access_write",
       "invalidate", "mark_dirty", "victim_of", "is_dirty", "contains")
# Weights skew toward the hot-path ops but keep every branch exercised.
WEIGHTS = (20, 12, 8, 25, 15, 4, 6, 4, 3, 3)


def _assert_state_equal(fast: FastCache, ref: RefCache) -> None:
    assert fast.stats.hits == ref.stats.hits
    assert fast.stats.misses == ref.stats.misses
    assert fast.stats.evictions == ref.stats.evictions
    assert fast.stats.writebacks == ref.stats.writebacks
    assert fast.resident_lines() == ref.resident_lines()
    assert fast.dirty_lines() == ref.dirty_lines()
    assert fast.max_set_occupancy() == ref.max_set_occupancy()


@pytest.mark.parametrize("geometry", GEOMETRIES)
def test_differential_randomized(geometry: tuple[int, int, int]) -> None:
    size, assoc, line = geometry
    fast = FastCache(size, assoc, line)
    ref = RefCache(size, assoc, line)
    rng = random.Random(0xC0FFEE ^ size ^ assoc)
    # A line population ~4x capacity keeps both hits and evictions frequent.
    lines = list(range(4 * size // line))
    n_ops = 12_000

    for step in range(n_ops):
        op = rng.choices(OPS, weights=WEIGHTS)[0]
        line_no = rng.choice(lines)
        if op == "lookup":
            assert fast.lookup(line_no) == ref.lookup(line_no)
        elif op == "fill":
            assert fast.fill(line_no) == ref.fill(line_no)
        elif op == "fill_dirty":
            assert fast.fill(line_no, dirty=True) == ref.fill(line_no, dirty=True)
        elif op == "access":
            assert fast.access(line_no) == ref.access(line_no)
        elif op == "access_write":
            assert fast.access(line_no, write=True) == ref.access(line_no, write=True)
        elif op == "invalidate":
            assert fast.invalidate(line_no) == ref.invalidate(line_no)
        elif op == "mark_dirty":
            assert fast.mark_dirty(line_no) == ref.mark_dirty(line_no)
        elif op == "victim_of":
            assert fast.victim_of(line_no) == ref.victim_of(line_no)
        elif op == "is_dirty":
            assert fast.is_dirty(line_no) == ref.is_dirty(line_no)
        else:
            assert fast.contains(line_no) == ref.contains(line_no)
        # Full-state comparison every few ops keeps the test fast while
        # still catching divergence within a handful of operations.
        if step % 64 == 0:
            _assert_state_equal(fast, ref)

    _assert_state_equal(fast, ref)
    # The sequence must actually have exercised the interesting paths.
    assert fast.stats.evictions > 0
    assert fast.stats.writebacks > 0
    assert fast.stats.hits > 0
    assert fast.stats.misses > 0


def test_differential_sequential_streams() -> None:
    """Strided/sequential patterns (the batched-access shape) also agree."""
    fast = FastCache(1024, 4, 64)
    ref = RefCache(1024, 4, 64)
    for base in (0, 7, 100):
        for stride in (1, 2, 5):
            for i in range(300):
                line_no = base + i * stride
                write = (i % 3) == 0
                assert fast.access(line_no, write=write) == ref.access(
                    line_no, write=write
                )
    _assert_state_equal(fast, ref)


def test_reset_stats_matches() -> None:
    fast = FastCache(512, 2, 64)
    ref = RefCache(512, 2, 64)
    for line_no in range(32):
        fast.access(line_no)
        ref.access(line_no)
    fast.reset_stats()
    ref.reset_stats()
    _assert_state_equal(fast, ref)
    # State (not stats) survives the reset identically.
    assert fast.resident_lines() == ref.resident_lines()

"""Property test: the cache model against a brute-force LRU reference.

The entire evaluation hangs off the cache simulator, so its hit/miss
decisions are checked access-by-access against an independent, obviously
correct implementation (per-set Python lists with explicit recency
ordering) under randomized access/write/invalidate workloads.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache


class ReferenceLru:
    """Straight-line set-associative LRU, no shared code with the model."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.dirty: set[int] = set()
        self.writebacks = 0

    def access(self, line: int, write: bool) -> bool:
        ways = self.sets[line % self.num_sets]
        hit = line in ways
        if hit:
            ways.remove(line)
        elif len(ways) == self.assoc:
            victim = ways.pop(0)
            if victim in self.dirty:
                self.dirty.discard(victim)
                self.writebacks += 1
        ways.append(line)
        if write:
            self.dirty.add(line)
        return hit

    def invalidate(self, line: int) -> None:
        ways = self.sets[line % self.num_sets]
        if line in ways:
            ways.remove(line)
            self.dirty.discard(line)


operation = st.tuples(
    st.sampled_from(["read", "write", "invalidate"]),
    st.integers(min_value=0, max_value=47),
)


@given(st.lists(operation, max_size=300))
@settings(max_examples=80, deadline=None)
def test_cache_matches_reference(operations):
    cache = Cache(16 * 64, associativity=4, line_size=64)  # 4 sets x 4 ways
    reference = ReferenceLru(num_sets=4, assoc=4)
    for op, line in operations:
        if op == "invalidate":
            cache.invalidate(line)
            reference.invalidate(line)
            continue
        hit = cache.access(line, write=(op == "write"))
        expected = reference.access(line, write=(op == "write"))
        assert hit == expected, f"divergence at {op} {line}"
    assert cache.stats.writebacks == reference.writebacks
    assert sorted(cache.resident_lines()) == sorted(
        line for ways in reference.sets for line in ways
    )


@given(st.lists(operation, max_size=200), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_cache_geometries_match_reference(operations, geometry):
    num_sets, assoc = [(1, 16), (2, 8), (8, 2), (16, 1)][geometry]
    cache = Cache(num_sets * assoc * 64, associativity=assoc, line_size=64)
    reference = ReferenceLru(num_sets=num_sets, assoc=assoc)
    for op, line in operations:
        if op == "invalidate":
            cache.invalidate(line)
            reference.invalidate(line)
        else:
            assert cache.access(line, write=(op == "write")) == reference.access(
                line, write=(op == "write")
            )

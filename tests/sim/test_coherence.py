"""Tests for the MESI directory model (Table I coherence)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.engine.hygra import HygraEngine
from repro.sim.coherence import EXCLUSIVE, MODIFIED, SHARED, MesiDirectory
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def test_first_read_is_exclusive():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    assert directory.state(0, 100) == EXCLUSIVE


def test_second_reader_demotes_to_shared():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_read(1, 100)
    assert directory.state(0, 100) == SHARED
    assert directory.state(1, 100) == SHARED
    assert directory.stats.downgrades == 1


def test_write_invalidates_sharers():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_read(1, 100)
    directory.on_write(0, 100)
    assert directory.state(0, 100) == MODIFIED
    assert directory.state(1, 100) is None
    assert directory.stats.invalidations == 1


def test_silent_upgrade_e_to_m():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_write(0, 100)
    assert directory.state(0, 100) == MODIFIED
    assert directory.stats.invalidations == 0
    assert directory.stats.ownership_transfers == 0  # E -> M is silent


def test_s_to_m_counts_upgrade():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_read(1, 100)
    directory.on_evict(1, 100)
    # Core 0 silently re-owns (sole survivor), so its write is silent too...
    directory.on_read(1, 100)  # ...but a second sharer reappears
    directory.on_write(0, 100)
    assert directory.stats.invalidations == 1


def test_read_from_remote_modified():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_write(0, 100)
    directory.on_read(1, 100)
    assert directory.state(0, 100) == SHARED
    assert directory.stats.read_misses_served_remote == 1


def test_evict_last_copy_clears_line():
    directory = MesiDirectory()
    directory.on_read(0, 100)
    directory.on_evict(0, 100)
    assert directory.sharers_of(100) == {}


operation = st.tuples(
    st.sampled_from(["read", "write", "evict"]),
    st.integers(min_value=0, max_value=3),  # core
    st.integers(min_value=0, max_value=9),  # line
)


@given(st.lists(operation, max_size=300))
@settings(max_examples=80, deadline=None)
def test_invariants_hold_under_any_interleaving(operations):
    directory = MesiDirectory()
    for op, core, line in operations:
        if op == "read":
            directory.on_read(core, line)
        elif op == "write":
            directory.on_write(core, line)
        else:
            directory.on_evict(core, line)
        directory.check_invariants()


def test_full_run_respects_invariants(small_hypergraph):
    """An entire engine run with tracking enabled keeps MESI coherent."""
    config = scaled_config(num_cores=4, llc_kb=2).replace(track_coherence=True)
    system = SimulatedSystem(config)
    HygraEngine().run(PageRank(iterations=1), small_hypergraph, system)
    directory = system.hierarchy.coherence
    assert directory is not None
    directory.check_invariants()
    # PR's vertex values are written from multiple chunks: write sharing
    # must show up as invalidation traffic.
    assert directory.stats.invalidations > 0


def test_tracking_off_by_default(small_hypergraph):
    system = SimulatedSystem(scaled_config(num_cores=2))
    assert system.hierarchy.coherence is None


def test_tracking_does_not_change_counts(small_hypergraph):
    base_config = scaled_config(num_cores=4, llc_kb=2)
    plain = SimulatedSystem(base_config)
    tracked = SimulatedSystem(base_config.replace(track_coherence=True))
    HygraEngine().run(PageRank(iterations=1), small_hypergraph, plain)
    HygraEngine().run(PageRank(iterations=1), small_hypergraph, tracked)
    assert plain.dram_accesses() == tracked.dram_accesses()
    assert plain.total_cycles == tracked.total_cycles

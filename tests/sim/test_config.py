"""Tests for Table I and scaled system configurations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SystemConfig, scaled_config, table1_config


def test_table1_matches_paper():
    config = table1_config()
    assert config.num_cores == 16
    assert config.frequency_ghz == 2.2
    assert config.l1_size == 32 * 1024 and config.l1_assoc == 8
    assert config.l1_latency == 3
    assert config.l2_size == 128 * 1024 and config.l2_latency == 6
    assert config.l3_size == 32 * 1024 * 1024
    assert config.l3_banks == 16 and config.l3_latency == 24
    assert config.inclusive_l3 is True
    assert config.dram_controllers == 4
    assert config.dram_gbps_per_controller == 12.8
    assert config.line_size == 64


def test_scaled_config_regime():
    config = scaled_config()
    assert config.num_cores == 16
    assert config.l3_size < table1_config().l3_size
    assert config.inclusive_l3 is False
    # The scaled LLC is deliberately smaller than an L2: the regime is
    # "working set >> LLC", and non-inclusion makes that coherent.
    assert config.l1_size < config.l2_size
    assert config.l3_size < config.l2_size * config.num_cores


def test_scaled_config_parametrized():
    config = scaled_config(num_cores=4, llc_kb=16)
    assert config.num_cores == 4
    assert config.l3_size == 16 * 1024


def test_replace_returns_new_config():
    config = table1_config()
    other = config.replace(num_cores=8)
    assert other.num_cores == 8
    assert config.num_cores == 16


def test_invalid_core_count():
    with pytest.raises(ConfigurationError):
        SystemConfig(name="bad", num_cores=0)


def test_cache_smaller_than_line_rejected():
    with pytest.raises(ConfigurationError):
        SystemConfig(name="bad", l1_size=32)


def test_dram_bytes_per_cycle():
    config = table1_config()
    assert config.dram_bytes_per_cycle_per_controller == pytest.approx(12.8 / 2.2)

"""Tests for the DRAM controller model."""

from __future__ import annotations

import pytest

from repro.sim.dram import DramModel


def test_record_access_counts():
    dram = DramModel()
    latency = dram.record_access()
    assert latency == dram.base_latency
    assert dram.accesses == 1
    dram.reset()
    assert dram.accesses == 0


def test_peak_bandwidth_lines():
    dram = DramModel(num_controllers=4, line_size=64, bytes_per_cycle_per_controller=5.8)
    assert dram.peak_lines_per_cycle == pytest.approx(4 * 5.8 / 64)


def test_contention_factor_monotone():
    dram = DramModel()
    low = dram.contention_factor(10, 10_000)
    mid = dram.contention_factor(100, 10_000)
    high = dram.contention_factor(3_000, 10_000)
    assert 1.0 <= low <= mid <= high


def test_contention_factor_idle():
    dram = DramModel()
    assert dram.contention_factor(0, 1_000) == 1.0
    assert dram.contention_factor(10, 0) == 1.0


def test_contention_factor_bounded():
    dram = DramModel()
    # Demand far beyond bandwidth saturates at the rho cap, staying finite.
    assert dram.contention_factor(10**9, 10) < 20.0


def test_drain_cycles():
    dram = DramModel()
    assert dram.drain_cycles(0) == 0
    assert dram.drain_cycles(100) == pytest.approx(100 / dram.peak_lines_per_cycle)

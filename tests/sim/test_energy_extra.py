"""Additional energy-model behaviors."""

from __future__ import annotations

import pytest

from repro.sim.config import scaled_config
from repro.sim.energy import EnergyModel, EnergyReport
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId


def test_dram_dominates_on_miss_heavy_streams():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1, llc_kb=2))
    # A miss-per-access stream: every line distinct.
    for i in range(0, 8000, 8):
        hierarchy.access(0, ArrayId.VERTEX_VALUE, i)
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.dram_nj > report.l1_nj + report.l2_nj + report.l3_nj
    assert report.memory_fraction > 0.5


def test_hit_heavy_stream_spends_in_sram():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1, llc_kb=2))
    for _ in range(5000):
        hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)  # one hot word
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.l1_nj > report.dram_nj


def test_zero_activity_report():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1))
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.total_nj == 0.0
    assert report.memory_fraction == 0.0


def test_report_is_frozen():
    report = EnergyReport(l1_nj=1, l2_nj=1, l3_nj=1, dram_nj=1, core_nj=1)
    with pytest.raises(Exception):
        report.l1_nj = 5

"""Additional energy-model behaviors."""

from __future__ import annotations

import pytest

from repro.sim.config import scaled_config
from repro.sim.energy import EnergyModel, EnergyReport
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId


def test_dram_dominates_on_miss_heavy_streams():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1, llc_kb=2))
    # A miss-per-access stream: every line distinct.
    for i in range(0, 8000, 8):
        hierarchy.access(0, ArrayId.VERTEX_VALUE, i)
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.dram_nj > report.l1_nj + report.l2_nj + report.l3_nj
    assert report.memory_fraction > 0.5


def test_hit_heavy_stream_spends_in_sram():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1, llc_kb=2))
    for _ in range(5000):
        hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)  # one hot word
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.l1_nj > report.dram_nj


def test_zero_activity_report():
    hierarchy = MemoryHierarchy(scaled_config(num_cores=1))
    report = EnergyModel().report(hierarchy, compute_cycles=0)
    assert report.total_nj == 0.0
    assert report.memory_fraction == 0.0


def test_report_is_frozen():
    report = EnergyReport(l1_nj=1, l2_nj=1, l3_nj=1, dram_nj=1, core_nj=1)
    with pytest.raises(Exception):
        report.l1_nj = 5


def test_writebacks_cost_dram_energy():
    """Regression: DRAM writeback lines must consume energy.

    The same miss-heavy stream is driven once as writes and once as reads;
    the write run drains dirty L3 victims to memory, and its DRAM energy
    must be *strictly* higher than the read-only counterfactual, which
    fetches the identical lines.
    """
    config = scaled_config(num_cores=1, llc_kb=2)
    reports = {}
    writebacks = {}
    for write in (True, False):
        hierarchy = MemoryHierarchy(config)
        for _ in range(2):  # second sweep re-dirties and evicts again
            for i in range(0, 8000, 8):
                hierarchy.access(0, ArrayId.VERTEX_VALUE, i, write=write)
        reports[write] = EnergyModel().report(hierarchy, compute_cycles=0)
        writebacks[write] = hierarchy.writebacks()
    assert writebacks[True] > 0 and writebacks[False] == 0
    # Read-side fetch energy is identical; the write run adds writeback
    # energy on top, raising the DRAM total and the memory fraction.
    assert reports[True].dram_nj == reports[False].dram_nj
    assert reports[False].dram_write_nj == 0.0
    assert reports[True].dram_write_nj == (
        writebacks[True] * EnergyModel.DRAM_WRITE_NJ
    )
    assert reports[True].dram_total_nj > reports[False].dram_total_nj
    assert reports[True].total_nj > reports[False].total_nj
    assert reports[True].memory_fraction > reports[False].memory_fraction

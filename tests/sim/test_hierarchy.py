"""Tests for the three-level hierarchy and per-array DRAM attribution."""

from __future__ import annotations


from repro.sim.config import scaled_config
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId


def make_hierarchy(num_cores: int = 2, inclusive: bool = False) -> MemoryHierarchy:
    config = scaled_config(num_cores=num_cores, llc_kb=2).replace(
        inclusive_l3=inclusive
    )
    return MemoryHierarchy(config)


def test_first_access_misses_to_dram():
    hierarchy = make_hierarchy()
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency >= hierarchy.config.dram_latency
    assert hierarchy.dram_accesses() == 1
    assert hierarchy.dram_breakdown()[ArrayId.VERTEX_VALUE] == 1


def test_second_access_hits_l1():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency == hierarchy.config.l1_latency
    assert hierarchy.dram_accesses() == 1


def test_same_line_elements_share_fetch():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 7)  # same 64B line (8B elements)
    assert hierarchy.dram_accesses() == 1
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 8)  # next line
    assert hierarchy.dram_accesses() == 2


def test_cross_core_sharing_through_l3():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    latency = hierarchy.access(1, ArrayId.VERTEX_VALUE, 0)
    # Core 1 misses privately but hits the shared L3: cheaper than DRAM.
    assert latency < hierarchy.config.dram_latency
    assert hierarchy.dram_accesses() == 1


def test_per_array_attribution_separates_regions():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.access(0, ArrayId.HYPEREDGE_VALUE, 0)
    breakdown = hierarchy.dram_breakdown()
    assert breakdown[ArrayId.VERTEX_VALUE] == 1
    assert breakdown[ArrayId.HYPEREDGE_VALUE] == 1


def test_engine_access_fills_l2_not_l1():
    hierarchy = make_hierarchy()
    hierarchy.engine_access(0, ArrayId.VERTEX_VALUE, 0)
    line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    assert hierarchy.l2[0].contains(line)
    assert not hierarchy.l1[0].contains(line)
    # The core's subsequent demand access finds it in L2.
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency == hierarchy.config.l1_latency + hierarchy.config.l2_latency


def test_engine_access_counts_dram_once():
    hierarchy = make_hierarchy()
    hierarchy.engine_access(0, ArrayId.OAG_EDGE, 0)
    hierarchy.engine_access(0, ArrayId.OAG_EDGE, 1)
    assert hierarchy.dram_breakdown()[ArrayId.OAG_EDGE] == 1


def test_inclusive_back_invalidation():
    hierarchy = make_hierarchy(inclusive=True)
    config = hierarchy.config
    l3_lines = config.l3_size // config.line_size
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    assert hierarchy.l1[0].contains(first_line)
    # Stream enough distinct lines through one L3 set to evict line 0.
    # Lines conflict when they share an L3 set: step by num_sets lines.
    step = hierarchy.l3.num_sets * hierarchy.layout.elements_per_line(
        ArrayId.VERTEX_VALUE
    )
    for i in range(1, config.l3_assoc + 2):
        hierarchy.access(1, ArrayId.VERTEX_VALUE, i * step)
    assert not hierarchy.l3.contains(first_line)
    assert not hierarchy.l1[0].contains(first_line)
    assert not hierarchy.l2[0].contains(first_line)


def test_non_inclusive_keeps_private_copies():
    hierarchy = make_hierarchy(inclusive=False)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    step = hierarchy.l3.num_sets * hierarchy.layout.elements_per_line(
        ArrayId.VERTEX_VALUE
    )
    for i in range(1, hierarchy.config.l3_assoc + 2):
        hierarchy.access(1, ArrayId.VERTEX_VALUE, i * step)
    assert not hierarchy.l3.contains(first_line)
    assert hierarchy.l1[0].contains(first_line)  # survives L3 eviction


def test_touch_sequential_equivalent_to_loop():
    a = make_hierarchy()
    b = make_hierarchy()
    total_a = a.touch_sequential(0, ArrayId.INCIDENT_VERTEX, 0, 40)
    total_b = sum(b.access(0, ArrayId.INCIDENT_VERTEX, i) for i in range(40))
    assert total_a == total_b
    assert a.dram_accesses() == b.dram_accesses()


def test_reset_stats_clears_counters():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.reset_stats()
    assert hierarchy.dram_accesses() == 0
    assert hierarchy.l3.stats.accesses == 0

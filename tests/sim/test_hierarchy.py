"""Tests for the three-level hierarchy and per-array DRAM attribution."""

from __future__ import annotations


from repro.sim.config import scaled_config
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId


def make_hierarchy(num_cores: int = 2, inclusive: bool = False) -> MemoryHierarchy:
    config = scaled_config(num_cores=num_cores, llc_kb=2).replace(
        inclusive_l3=inclusive
    )
    return MemoryHierarchy(config)


def test_first_access_misses_to_dram():
    hierarchy = make_hierarchy()
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency >= hierarchy.config.dram_latency
    assert hierarchy.dram_accesses() == 1
    assert hierarchy.dram_breakdown()[ArrayId.VERTEX_VALUE] == 1


def test_second_access_hits_l1():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency == hierarchy.config.l1_latency
    assert hierarchy.dram_accesses() == 1


def test_same_line_elements_share_fetch():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 7)  # same 64B line (8B elements)
    assert hierarchy.dram_accesses() == 1
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 8)  # next line
    assert hierarchy.dram_accesses() == 2


def test_cross_core_sharing_through_l3():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    latency = hierarchy.access(1, ArrayId.VERTEX_VALUE, 0)
    # Core 1 misses privately but hits the shared L3: cheaper than DRAM.
    assert latency < hierarchy.config.dram_latency
    assert hierarchy.dram_accesses() == 1


def test_per_array_attribution_separates_regions():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.access(0, ArrayId.HYPEREDGE_VALUE, 0)
    breakdown = hierarchy.dram_breakdown()
    assert breakdown[ArrayId.VERTEX_VALUE] == 1
    assert breakdown[ArrayId.HYPEREDGE_VALUE] == 1


def test_engine_access_fills_l2_not_l1():
    hierarchy = make_hierarchy()
    hierarchy.engine_access(0, ArrayId.VERTEX_VALUE, 0)
    line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    assert hierarchy.l2[0].contains(line)
    assert not hierarchy.l1[0].contains(line)
    # The core's subsequent demand access finds it in L2.
    latency = hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    assert latency == hierarchy.config.l1_latency + hierarchy.config.l2_latency


def test_engine_access_counts_dram_once():
    hierarchy = make_hierarchy()
    hierarchy.engine_access(0, ArrayId.OAG_EDGE, 0)
    hierarchy.engine_access(0, ArrayId.OAG_EDGE, 1)
    assert hierarchy.dram_breakdown()[ArrayId.OAG_EDGE] == 1


def test_inclusive_back_invalidation():
    hierarchy = make_hierarchy(inclusive=True)
    config = hierarchy.config
    l3_lines = config.l3_size // config.line_size
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    assert hierarchy.l1[0].contains(first_line)
    # Stream enough distinct lines through one L3 set to evict line 0.
    # Lines conflict when they share an L3 set: step by num_sets lines.
    step = hierarchy.l3.num_sets * hierarchy.layout.elements_per_line(
        ArrayId.VERTEX_VALUE
    )
    for i in range(1, config.l3_assoc + 2):
        hierarchy.access(1, ArrayId.VERTEX_VALUE, i * step)
    assert not hierarchy.l3.contains(first_line)
    assert not hierarchy.l1[0].contains(first_line)
    assert not hierarchy.l2[0].contains(first_line)


def test_non_inclusive_keeps_private_copies():
    hierarchy = make_hierarchy(inclusive=False)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    step = hierarchy.l3.num_sets * hierarchy.layout.elements_per_line(
        ArrayId.VERTEX_VALUE
    )
    for i in range(1, hierarchy.config.l3_assoc + 2):
        hierarchy.access(1, ArrayId.VERTEX_VALUE, i * step)
    assert not hierarchy.l3.contains(first_line)
    assert hierarchy.l1[0].contains(first_line)  # survives L3 eviction


def test_touch_sequential_equivalent_to_loop():
    a = make_hierarchy()
    b = make_hierarchy()
    total_a = a.touch_sequential(0, ArrayId.INCIDENT_VERTEX, 0, 40)
    total_b = sum(b.access(0, ArrayId.INCIDENT_VERTEX, i) for i in range(40))
    assert total_a == total_b
    assert a.dram_accesses() == b.dram_accesses()


def test_reset_stats_clears_counters():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    hierarchy.reset_stats()
    assert hierarchy.dram_accesses() == 0
    assert hierarchy.l3.stats.accesses == 0


# -- write traffic (dirty propagation and DRAM writebacks) --------------------


def _dirty_resident_lines(hierarchy: MemoryHierarchy) -> set[int]:
    lines: set[int] = set()
    for cache in (*hierarchy.l1, *hierarchy.l2, hierarchy.l3):
        lines.update(cache.dirty_lines())
    return lines


def test_capacity_eviction_writes_back_dirty_line():
    hierarchy = make_hierarchy()
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0, write=True)
    assert hierarchy.writebacks() == 0  # still resident, nothing drained
    # Stream enough distinct lines to push line 0 out of every level.
    for i in range(1, 20_000):
        hierarchy.access(
            0,
            ArrayId.VERTEX_VALUE,
            i * hierarchy.layout.elements_per_line(ArrayId.VERTEX_VALUE),
        )
    assert hierarchy.writebacks() == 1
    assert hierarchy.writeback_breakdown()[ArrayId.VERTEX_VALUE] == 1
    assert hierarchy.dram.writes == 1


def test_write_heavy_workload_conserves_dirty_lines():
    # Every line ever dirtied must end as at least one DRAM writeback or
    # stay dirty-resident in some cache — the bug this PR fixed dropped
    # them silently at eviction.
    hierarchy = make_hierarchy()
    writebacks: set[int] = set()
    hierarchy.on_writeback = writebacks.add
    dirtied: set[int] = set()
    for i in range(30_000):
        index = (i * 17) % 8192
        hierarchy.access(i % 2, ArrayId.VERTEX_VALUE, index, write=True)
        dirtied.add(hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, index))
    assert hierarchy.writebacks() > 0
    assert hierarchy.dram.writes == hierarchy.writebacks()
    assert sum(hierarchy.writeback_breakdown().values()) == hierarchy.writebacks()
    assert dirtied <= writebacks | _dirty_resident_lines(hierarchy)


def test_inclusive_back_invalidation_drains_private_dirty_copy():
    hierarchy = make_hierarchy(inclusive=True)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0, write=True)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    step = hierarchy.l3.num_sets * hierarchy.layout.elements_per_line(
        ArrayId.VERTEX_VALUE
    )
    for i in range(1, hierarchy.config.l3_assoc + 2):
        hierarchy.access(1, ArrayId.VERTEX_VALUE, i * step)
    # The L3 eviction back-invalidated core 0's dirty copy: the dirty data
    # must have reached DRAM rather than vanishing with the invalidation.
    assert not hierarchy.l1[0].contains(first_line)
    assert hierarchy.writebacks() == 1
    assert hierarchy.writeback_breakdown()[ArrayId.VERTEX_VALUE] == 1


def test_owner_tracking_only_when_inclusive():
    hierarchy = make_hierarchy(inclusive=False)
    for i in range(64):
        hierarchy.access(i % 2, ArrayId.VERTEX_VALUE, i)
        hierarchy.access(i % 2, ArrayId.VERTEX_VALUE, i)  # L1 hits too
    assert hierarchy._owners == {}


def test_owners_pruned_after_private_eviction():
    hierarchy = make_hierarchy(inclusive=True)
    hierarchy.access(0, ArrayId.VERTEX_VALUE, 0)
    first_line = hierarchy.layout.line_of(ArrayId.VERTEX_VALUE, 0)
    assert 0 in hierarchy._owners.get(first_line, set())
    # Conflict line 0 out of core 0's private caches (same L1/L2 sets).
    step = max(
        hierarchy.l1[0].num_sets, hierarchy.l2[0].num_sets
    ) * hierarchy.layout.elements_per_line(ArrayId.VERTEX_VALUE)
    assoc = max(hierarchy.config.l1_assoc, hierarchy.config.l2_assoc)
    for i in range(1, assoc + 2):
        hierarchy.access(0, ArrayId.VERTEX_VALUE, i * step)
    assert not hierarchy.l1[0].contains(first_line)
    assert not hierarchy.l2[0].contains(first_line)
    assert 0 not in hierarchy._owners.get(first_line, set())

"""Batched-access and prober equivalence tests for the memory hierarchy.

The PR 10 fast paths — ``access_block`` / ``engine_access_block`` (one
probe per cache line), the pre-bound prober closures
(``engine_prober`` / ``engine_pair_prober`` / ``demand_prober`` /
``SimulatedSystem.demand_writer``), and ``charge_compute_run`` — all claim
*bit-identity* with the per-element reference walk.  These tests drive
seeded randomized access streams through both paths on twin hierarchies
and assert every observable is identical: returned latencies, hit/miss/
eviction/writeback counters at every level, probe counters, DRAM traffic
and its per-array attribution, dirty-line sets, and full LRU residency
order.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.config import scaled_config
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId, MemoryLayout
from repro.sim.system import SimulatedSystem

ARRAYS = [
    ArrayId.VERTEX_VALUE,
    ArrayId.HYPEREDGE_VALUE,
    ArrayId.INCIDENT_VERTEX,
    ArrayId.BITMAP,
    ArrayId.OAG_OFFSET,
]


def make_hierarchy(num_cores: int = 2, inclusive: bool = False) -> MemoryHierarchy:
    config = scaled_config(num_cores=num_cores, llc_kb=2).replace(
        inclusive_l3=inclusive
    )
    return MemoryHierarchy(config)


def _stats_tuple(cache):
    stats = cache.stats
    return (stats.hits, stats.misses, stats.evictions, stats.writebacks)


def snapshot(hierarchy: MemoryHierarchy):
    """Every externally observable fact about a hierarchy's state.

    ``resident_lines()`` iterates each set in LRU→MRU insertion order, so
    comparing it compares the full replacement state, not just membership.
    """
    caches = [*hierarchy.l1, *hierarchy.l2, hierarchy.l3]
    return {
        "stats": [_stats_tuple(cache) for cache in caches],
        "resident": [cache.resident_lines() for cache in caches],
        "dirty": [cache.dirty_lines() for cache in caches],
        "demand_probes": hierarchy.demand_probes,
        "engine_probes": hierarchy.engine_probes,
        "dram": (hierarchy.dram.accesses, hierarchy.dram.writes),
        "dram_by_array": dict(hierarchy.dram_breakdown()),
        "writebacks": dict(hierarchy.writeback_breakdown()),
    }


def _random_ops(seed: int, num_cores: int, n: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        ops.append(
            (
                rng.randrange(num_cores),
                ARRAYS[rng.randrange(len(ARRAYS))],
                rng.randrange(2048),
                rng.randrange(1, 20),
                rng.random() < 0.4,
            )
        )
    return ops


# -- block accesses vs per-element loops -------------------------------------


@pytest.mark.parametrize("inclusive", [False, True])
def test_access_block_matches_per_element(inclusive: bool) -> None:
    batched = make_hierarchy(inclusive=inclusive)
    reference = make_hierarchy(inclusive=inclusive)
    for core, array, start, count, write in _random_ops(0xB10C, 2, 600):
        got = batched.access_block(core, array, start, count, write=write)
        want = 0
        for index in range(start, start + count):
            want += reference.access(core, array, index, write=write)
        assert got == want
        assert snapshot(batched) == snapshot(reference)


@pytest.mark.parametrize("inclusive", [False, True])
def test_engine_access_block_matches_per_element(inclusive: bool) -> None:
    batched = make_hierarchy(inclusive=inclusive)
    reference = make_hierarchy(inclusive=inclusive)
    for core, array, start, count, _ in _random_ops(0xE27, 2, 600):
        got = batched.engine_access_block(core, array, start, count)
        want = 0
        for index in range(start, start + count):
            want += reference.engine_access(core, array, index)
        assert got == want
        assert snapshot(batched) == snapshot(reference)


def test_block_of_zero_or_negative_count_is_free() -> None:
    hierarchy = make_hierarchy()
    before = snapshot(hierarchy)
    assert hierarchy.access_block(0, ArrayId.VERTEX_VALUE, 5, 0) == 0
    assert hierarchy.engine_access_block(0, ArrayId.VERTEX_VALUE, 5, -3) == 0
    assert snapshot(hierarchy) == before


def test_touch_sequential_matches_per_element_reads() -> None:
    batched = make_hierarchy()
    reference = make_hierarchy()
    batched.touch_sequential(0, ArrayId.VERTEX_VALUE, 0, 100)
    for index in range(100):
        reference.access(0, ArrayId.VERTEX_VALUE, index, write=False)
    assert snapshot(batched) == snapshot(reference)


# -- prober closures vs the methods they replace ------------------------------


@pytest.mark.parametrize("inclusive", [False, True])
def test_engine_prober_matches_engine_access(inclusive: bool) -> None:
    fast = make_hierarchy(inclusive=inclusive)
    reference = make_hierarchy(inclusive=inclusive)
    probes = {}
    for core, array, index, _, _ in _random_ops(0x9E0B, 2, 800):
        probe = probes.get((core, array))
        if probe is None:
            probe = probes[(core, array)] = fast.engine_prober(core, array)
        assert probe(index) == reference.engine_access(core, array, index)
        assert snapshot(fast) == snapshot(reference)


def test_engine_prober_uncounted_defers_probe_count() -> None:
    fast = make_hierarchy()
    reference = make_hierarchy()
    probe = fast.engine_prober(0, ArrayId.VERTEX_VALUE, counted=False)
    issued = 0
    for _, _, index, _, _ in _random_ops(0x0FF, 1, 400):
        assert probe(index) == reference.engine_access(
            0, ArrayId.VERTEX_VALUE, index
        )
        issued += 1
    # The caller settles the deferred count; everything else already agrees.
    fast.engine_probes += issued
    assert snapshot(fast) == snapshot(reference)


def test_engine_pair_prober_matches_block_of_two() -> None:
    fast = make_hierarchy()
    reference = make_hierarchy()
    probes = {}
    for core, array, start, _, _ in _random_ops(0x9A12, 2, 800):
        probe = probes.get((core, array))
        if probe is None:
            probe = probes[(core, array)] = fast.engine_pair_prober(core, array)
        assert probe(start) == reference.engine_access_block(core, array, start, 2)
        assert snapshot(fast) == snapshot(reference)


@pytest.mark.parametrize("write", [False, True])
def test_demand_prober_matches_access(write: bool) -> None:
    fast = make_hierarchy()
    reference = make_hierarchy()
    probes = {}
    for core, array, index, _, _ in _random_ops(0xD3A0 + write, 2, 800):
        probe = probes.get((core, array))
        if probe is None:
            probe = probes[(core, array)] = fast.demand_prober(
                core, array, write=write
            )
        assert probe(index) == reference.access(core, array, index, write=write)
        assert snapshot(fast) == snapshot(reference)


def test_demand_prober_with_coherence_matches_access() -> None:
    config = scaled_config(num_cores=2, llc_kb=2).replace(track_coherence=True)
    fast = MemoryHierarchy(config)
    reference = MemoryHierarchy(config)
    probes = {}
    for core, array, index, _, write in _random_ops(0xC0E, 2, 600):
        probe = probes.get((core, array, write))
        if probe is None:
            probe = probes[(core, array, write)] = fast.demand_prober(
                core, array, write=write
            )
        assert probe(index) == reference.access(core, array, index, write=write)
    assert snapshot(fast) == snapshot(reference)


# -- system-level closures and batched charges --------------------------------


def test_demand_writer_matches_write_exactly() -> None:
    config = scaled_config(num_cores=2, llc_kb=2)
    fast = SimulatedSystem(config)
    reference = SimulatedSystem(config)
    writers = {}
    for core, array, index, _, _ in _random_ops(0x33F1, 2, 800):
        writer = writers.get((core, array))
        if writer is None:
            writer = writers[(core, array)] = fast.demand_writer(core, array)
        assert writer(index) == reference.write(core, array, index)
    assert snapshot(fast.hierarchy) == snapshot(reference.hierarchy)
    assert fast.timer._memory == reference.timer._memory


def test_demand_writer_with_coherence_matches_write() -> None:
    config = scaled_config(num_cores=2, llc_kb=2).replace(track_coherence=True)
    fast = SimulatedSystem(config)
    reference = SimulatedSystem(config)
    writer = fast.demand_writer(0, ArrayId.VERTEX_VALUE)
    for _, _, index, _, _ in _random_ops(0xC0E2, 1, 300):
        assert writer(index) == reference.write(0, ArrayId.VERTEX_VALUE, index)
    assert snapshot(fast.hierarchy) == snapshot(reference.hierarchy)


def test_charge_compute_run_matches_charge_sequence() -> None:
    """The batched charge replays the exact float-addition sequence —
    including non-integer cycle costs whose sum is order-sensitive."""
    config = scaled_config(num_cores=2, llc_kb=2)
    fast = SimulatedSystem(config)
    reference = SimulatedSystem(config)
    cycles = 6 * 1.3 + 1  # the PR per-tuple core cost: non-representable
    fast.charge_compute_run(0, cycles, 1000)
    for _ in range(1000):
        reference.charge_compute(0, cycles)
    assert fast.timer._compute == reference.timer._compute
    assert fast.total_compute_cycles == reference.total_compute_cycles
    fast.charge_compute_run(1, cycles, 0)  # zero-count: a no-op
    assert fast.timer._compute == reference.timer._compute


# -- layout helpers -----------------------------------------------------------


def test_lines_of_range_covers_exactly_the_touched_lines() -> None:
    layout = MemoryLayout()
    for array in ARRAYS:
        for start, count in [(0, 1), (3, 13), (7, 8), (63, 2), (5, 0), (5, -1)]:
            got = layout.lines_of_range(array, start, count)
            want = sorted(
                {layout.line_of(array, i) for i in range(start, start + count)}
            )
            assert list(got) == want


def test_lines_of_range_is_contiguous() -> None:
    layout = MemoryLayout()
    lines = layout.lines_of_range(ArrayId.VERTEX_VALUE, 5, 100)
    assert list(lines) == list(range(lines[0], lines[-1] + 1))


# -- conservation -------------------------------------------------------------


def test_dirty_lines_are_resident_and_writebacks_conserved() -> None:
    """After a heavy mixed write stream: every dirty line is still resident
    in its cache, and per-array writeback attribution sums to the total."""
    hierarchy = make_hierarchy()
    for core, array, start, count, write in _random_ops(0xD127, 2, 1500):
        hierarchy.access_block(core, array, start, count, write=write)
    for cache in [*hierarchy.l1, *hierarchy.l2, hierarchy.l3]:
        resident = set(cache.resident_lines())
        assert set(cache.dirty_lines()) <= resident
    assert hierarchy.writebacks() == sum(
        hierarchy.writeback_breakdown().values()
    )

"""Tests for the runtime invariant checker."""

from __future__ import annotations

import pytest

from repro.chgraph.fifo import BoundedFifo
from repro.harness.differential import inject_fault, seeded_graphs
from repro.harness.runner import Runner
from repro.hypergraph.frontier import Frontier
from repro.sim.config import scaled_config
from repro.sim.invariants import (
    InvariantChecker,
    InvariantViolationError,
    check_fifo,
)
from repro.sim.layout import ArrayId
from repro.sim.observe import InstrumentedSystem
from repro.sim.protocol import PHASE_BEGIN, EngineEvent
from repro.sim.system import SimulatedSystem


def make_checked_system(**config_kwargs):
    config = scaled_config(num_cores=2, llc_kb=2, **config_kwargs)
    system = InstrumentedSystem(SimulatedSystem(config))
    checker = system.add_observer(InvariantChecker())
    return system, checker


def checked_run(engine_name="Hygra", algorithm_name="PR", strict=False):
    runner = Runner(pr_iterations=2, cache_dir=None)
    hypergraph = seeded_graphs(count=1)[0]
    config = scaled_config(num_cores=2, llc_kb=2)
    engine = runner.engine(engine_name, hypergraph, config)
    algorithm = runner.algorithm(algorithm_name)
    system = InstrumentedSystem(SimulatedSystem(config))
    checker = system.add_observer(InvariantChecker(strict=strict))
    engine.run(algorithm, hypergraph, system)
    return checker


def test_clean_run_has_no_violations():
    checker = checked_run()
    assert checker.ok
    assert checker.violations() == []
    assert checker.barriers_checked > 0


def test_synthetic_traffic_conserves_counters():
    system, checker = make_checked_system()
    for i in range(5_000):
        if i % 3 == 0:
            system.write(i % 2, ArrayId.VERTEX_VALUE, (i * 17) % 4096)
        else:
            system.read(i % 2, ArrayId.VERTEX_VALUE, (i * 17) % 4096)
    system.barrier()
    assert checker.violations() == []
    assert system.dram_writebacks() > 0  # write-heavy enough to drain


def test_lost_writeback_fault_is_detected():
    with inject_fault("lost-writeback"):
        checker = checked_run(engine_name="ChGraph")
    assert not checker.ok
    assert any("dirty line" in v and "lost" in v for v in checker.violations())


def test_skewed_attribution_fault_is_detected():
    with inject_fault("skewed-attribution"):
        checker = checked_run()
    assert not checker.ok
    assert any("per-array DRAM fetches" in v for v in checker.violations())


def test_strict_mode_raises_on_fault():
    with inject_fault("lost-writeback"):
        with pytest.raises(InvariantViolationError):
            checked_run(engine_name="ChGraph", strict=True)


def test_violation_cap_truncates():
    system, _ = make_checked_system()
    checker = system.add_observer(InvariantChecker(max_violations=3))
    for _ in range(10):
        checker._report("boom")
    found = checker.violations()
    assert len(found) == 4  # 3 kept + truncation notice
    assert "suppressed" in found[-1]


def test_check_fifo_accepts_consistent_fifo():
    fifo = BoundedFifo(depth=4)
    fifo.push(1)
    fifo.push(2)
    fifo.pop()
    assert check_fifo(fifo, "chains") == []


def test_check_fifo_flags_corrupt_counters():
    fifo = BoundedFifo(depth=4)
    fifo.push(1)
    fifo.pops = 5  # corrupt: more pops than pushes
    messages = check_fifo(fifo, "chains")
    assert any("pops 5 > pushes 1" in m for m in messages)
    assert any("pushes - pops" in m for m in messages)


def test_watched_fifo_checked_at_barrier():
    system, checker = make_checked_system()
    fifo = BoundedFifo(depth=2)
    checker.watch_fifo("chains", fifo)
    fifo.push(1)
    fifo.pops = 3
    system.barrier()
    assert any("chains:" in v for v in checker.violations())


def test_frontier_count_mismatch_detected():
    system, checker = make_checked_system()
    frontier = Frontier(universe=64, active=(1, 2, 3))
    frontier._count = 7  # corrupt the memoized popcount
    system.on_event(
        EngineEvent(
            kind=PHASE_BEGIN,
            iteration=0,
            phase="vertex",
            frontier_size=7,
            frontier=frontier,
        )
    )
    assert any("frontier cached count 7 != popcount 3" in v
               for v in checker.violations())


def test_frontier_escaped_bitmap_is_not_flagged():
    system, checker = make_checked_system()
    frontier = Frontier(universe=64, active=(1, 2, 3))
    frontier.bitmap[5] = True  # escape hatch: cache is invalidated, not stale
    system.on_event(
        EngineEvent(
            kind=PHASE_BEGIN,
            iteration=0,
            phase="vertex",
            frontier_size=4,
            frontier=frontier,
        )
    )
    assert checker.violations() == []


def test_checker_seeds_shadow_from_preexisting_dirty_lines():
    # Attaching mid-run must not flag dirty lines that predate the checker.
    config = scaled_config(num_cores=2, llc_kb=2)
    system = InstrumentedSystem(SimulatedSystem(config))
    system.write(0, ArrayId.VERTEX_VALUE, 0)
    checker = system.add_observer(InvariantChecker())
    system.barrier()
    assert checker.violations() == []

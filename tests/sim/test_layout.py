"""Tests for the simulated memory layout of the named arrays."""

from __future__ import annotations

import pytest

from repro.sim.layout import ARRAY_GROUPS, ArrayId, MemoryLayout


def test_addresses_disjoint_across_arrays():
    layout = MemoryLayout()
    # Even very large indices stay within an array's 1 GiB region.
    big_index = 10_000_000
    regions = set()
    for array in ArrayId:
        address = layout.address(array, big_index)
        regions.add(address >> 30)
    assert len(regions) == len(ArrayId)


def test_line_of_element_width():
    layout = MemoryLayout(line_size=64)
    # 8-byte values: 8 per line.
    assert layout.line_of(ArrayId.VERTEX_VALUE, 0) == layout.line_of(
        ArrayId.VERTEX_VALUE, 7
    )
    assert layout.line_of(ArrayId.VERTEX_VALUE, 8) != layout.line_of(
        ArrayId.VERTEX_VALUE, 7
    )
    # 4-byte ids: 16 per line.
    assert layout.elements_per_line(ArrayId.INCIDENT_VERTEX) == 16
    assert layout.elements_per_line(ArrayId.VERTEX_VALUE) == 8
    assert layout.elements_per_line(ArrayId.BITMAP) == 64


def test_array_of_line_roundtrip():
    layout = MemoryLayout()
    for array in ArrayId:
        line = layout.line_of(array, 123)
        assert layout.array_of_line(line) == array


def test_non_power_of_two_line_rejected():
    with pytest.raises(ValueError):
        MemoryLayout(line_size=48)


def test_groups_cover_all_arrays_once():
    seen = [array for arrays in ARRAY_GROUPS.values() for array in arrays]
    assert sorted(seen) == sorted(ArrayId)
    assert set(ARRAY_GROUPS) == {"offset", "incident", "value", "oag", "other"}

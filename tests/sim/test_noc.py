"""Tests for the mesh NoC latency model."""

from __future__ import annotations

from repro.sim.noc import MeshNoc


def test_same_tile_zero_hops():
    noc = MeshNoc(16)
    assert noc.hops(5, 5) == 0
    assert noc.latency(5, 5) == 0


def test_manhattan_distance_4x4():
    noc = MeshNoc(16)
    # Tile 0 is (0,0); tile 15 is (3,3): 6 hops under X-Y routing.
    assert noc.hops(0, 15) == 6
    assert noc.hops(0, 3) == 3
    assert noc.hops(0, 4) == 1  # (0,0) -> (0,1)


def test_hops_symmetric():
    noc = MeshNoc(16)
    for src in range(16):
        for dst in range(16):
            assert noc.hops(src, dst) == noc.hops(dst, src)


def test_latency_scales_with_router_and_link():
    noc = MeshNoc(16, router_latency=2, link_latency=3)
    assert noc.latency(0, 1) == 5
    assert noc.round_trip(0, 1) == 10


def test_non_square_core_count_padded():
    noc = MeshNoc(6)
    assert noc.side == 3
    assert noc.hops(0, 5) >= 1


def test_average_round_trip_positive():
    noc = MeshNoc(16)
    average = noc.average_round_trip(0)
    assert 0 < average < noc.round_trip(0, 15) + 1

"""InstrumentedSystem: observation must never perturb the simulation."""

from __future__ import annotations

import numpy as np

from repro.algorithms.pagerank import PageRank
from repro.algorithms.bfs import Bfs
from repro.engine.chgraph_engine import ChGraphEngine
from repro.engine.hygra import HygraEngine
from repro.sim import (
    InstrumentedSystem,
    IterationTimeline,
    NullSystem,
    Observer,
    PhaseProfiler,
    SimulatedSystem,
    TraceObserver,
    TracingSystem,
    instrument,
    scaled_config,
)
from repro.sim.layout import ArrayId


def make_system() -> SimulatedSystem:
    return SimulatedSystem(scaled_config(num_cores=4, llc_kb=2))


def test_instrumented_run_is_bit_identical(small_hypergraph) -> None:
    algorithm = PageRank(iterations=2)
    plain = HygraEngine().run(algorithm, small_hypergraph, make_system())
    wrapped = InstrumentedSystem.profiled(make_system())
    profiled = HygraEngine().run(algorithm, small_hypergraph, wrapped)

    assert profiled.cycles == plain.cycles
    assert profiled.compute_cycles == plain.compute_cycles
    assert profiled.memory_stall_cycles == plain.memory_stall_cycles
    assert profiled.dram_accesses == plain.dram_accesses
    assert profiled.dram_by_array == plain.dram_by_array
    assert np.array_equal(profiled.result, plain.result)
    assert plain.telemetry is None
    assert profiled.telemetry is not None


def test_phase_profiler_totals_match_run(small_hypergraph) -> None:
    system = InstrumentedSystem.profiled(make_system())
    result = HygraEngine().run(PageRank(iterations=2), small_hypergraph, system)
    telemetry = result.telemetry

    assert set(telemetry.phases) == {"hyperedge", "vertex"}
    for profile in telemetry.phases.values():
        assert profile.activations == result.iterations
        assert profile.cycles > 0
        assert sum(profile.accesses.values()) > 0
    # Phase barrier cycles partition the run's total.
    total = sum(p.cycles for p in telemetry.phases.values())
    assert total == result.cycles
    # DRAM attribution partitions the run's DRAM traffic.
    dram = sum(p.dram_accesses for p in telemetry.phases.values())
    assert dram == result.dram_accesses


def test_iteration_timeline_frontiers(small_hypergraph) -> None:
    system = InstrumentedSystem.profiled(make_system())
    result = HygraEngine().run(Bfs(), small_hypergraph, system)
    timeline = result.telemetry.iterations

    assert len(timeline) == result.iterations
    first = timeline[0].phases[0]
    assert first.phase == "hyperedge"
    assert first.frontier_size == 1  # BFS starts from a single root
    assert 0.0 < first.frontier_density <= 1.0
    for iteration in timeline:
        assert [s.phase for s in iteration.phases] == ["hyperedge", "vertex"]
    cycles = sum(s.cycles for it in timeline for s in it.phases)
    assert cycles == result.cycles


def test_trace_observer_matches_tracing_system(small_hypergraph) -> None:
    config = scaled_config(num_cores=4, llc_kb=2)
    algorithm = PageRank(iterations=1)
    recorder = TracingSystem(config)
    HygraEngine().run(algorithm, small_hypergraph, recorder)

    observed = InstrumentedSystem(SimulatedSystem(config), [TraceObserver()])
    HygraEngine().run(algorithm, small_hypergraph, observed)
    trace = observed.observer(TraceObserver).trace

    assert trace == recorder.trace


def test_wrapper_delegates_identity_and_results() -> None:
    inner = NullSystem()
    system = InstrumentedSystem(inner)
    assert system.config is inner.config
    assert system.hierarchy is None
    assert system.total_cycles == 0.0
    assert system.dram_accesses() == 0
    assert system.telemetry().phases == {}
    assert system.observer(PhaseProfiler) is None
    profiler = system.add_observer(PhaseProfiler())
    assert system.observer(PhaseProfiler) is profiler
    assert system.observer(IterationTimeline) is None


def test_chgraph_fifo_stats_only_under_instrumentation(small_hypergraph) -> None:
    algorithm = PageRank(iterations=2)
    plain = ChGraphEngine().run(algorithm, small_hypergraph, make_system())
    assert plain.telemetry is None

    system = InstrumentedSystem.profiled(make_system())
    profiled = ChGraphEngine().run(algorithm, small_hypergraph, system)
    fifo = profiled.telemetry.fifo
    assert fifo["chain_fifo_depth"] == system.config.chain_fifo_depth
    assert 0 < fifo["chain_fifo_peak"] <= fifo["chain_fifo_depth"]
    assert fifo["max_chain_length"] >= fifo["chain_fifo_peak"]
    assert profiled.telemetry.chain_stats["chains"] > 0
    assert profiled.cycles == plain.cycles


def test_instrument_with_no_observers_returns_bare_system() -> None:
    """The zero-observer passthrough: unobserved runs must pay no wrapper
    dispatch, so ``instrument`` hands back the inner system itself."""
    system = make_system()
    assert instrument(system, []) is system
    assert instrument(system, None) is system
    wrapped = instrument(system, [PhaseProfiler()])
    assert isinstance(wrapped, InstrumentedSystem)
    assert wrapped.inner is system


class _ComputeCounter(Observer):
    def __init__(self) -> None:
        self.events: list[tuple[int, float]] = []

    def on_compute(self, core: int, cycles: float) -> None:
        self.events.append((core, cycles))


def test_charge_compute_run_forwards_one_event_per_charge() -> None:
    """Observers are promised one on_compute hook per charge — the batched
    entry point must not collapse them."""
    counter = _ComputeCounter()
    system = InstrumentedSystem(make_system(), [counter])
    system.charge_compute_run(1, 2.5, 7)
    assert counter.events == [(1, 2.5)] * 7
    assert system.inner.total_compute_cycles == sum(c for _, c in counter.events)


def test_demand_writer_routes_through_observed_write() -> None:
    """The instrumented system's demand_writer must not hand out the inner
    system's fast closure — every write must reach the observers."""
    observed = InstrumentedSystem(make_system(), [TraceObserver()])
    writer = observed.demand_writer(0, ArrayId.VERTEX_VALUE)
    reference = make_system()
    for index in (3, 3, 11, 200):
        assert writer(index) == reference.write(0, ArrayId.VERTEX_VALUE, index)
    trace = observed.observer(TraceObserver).trace
    assert [(e.kind, e.index) for e in trace] == [
        ("write", 3), ("write", 3), ("write", 11), ("write", 200)
    ]

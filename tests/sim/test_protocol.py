"""Protocol conformance: every shipped system satisfies MemorySystem."""

from __future__ import annotations

import pytest

from repro.sim import (
    InstrumentedSystem,
    MemorySystem,
    NullSystem,
    SimulatedSystem,
    TracingSystem,
    scaled_config,
)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: NullSystem(),
        lambda: SimulatedSystem(scaled_config(num_cores=2, llc_kb=2)),
        lambda: TracingSystem(scaled_config(num_cores=2, llc_kb=2)),
        lambda: InstrumentedSystem(NullSystem()),
        lambda: InstrumentedSystem.profiled(
            SimulatedSystem(scaled_config(num_cores=2, llc_kb=2))
        ),
    ],
    ids=["null", "simulated", "tracing", "instrumented-null", "instrumented-sim"],
)
def test_shipped_systems_conform(factory) -> None:
    assert isinstance(factory(), MemorySystem)


def test_partial_implementations_do_not_conform() -> None:
    class ReadOnly:
        def read(self, core, array, index):
            return 0

    assert not isinstance(ReadOnly(), MemorySystem)
    assert not isinstance(object(), MemorySystem)


def test_protocol_members_cover_the_charging_interface() -> None:
    # The boundary every engine is written against: if a member vanishes
    # from the protocol, engines could call a method some system lacks.
    for member in (
        "read", "read_serial", "write", "engine_read",
        "charge_compute", "charge_engine", "barrier", "on_event",
        "dram_accesses", "dram_breakdown",
    ):
        assert callable(getattr(NullSystem(), member))
        assert callable(
            getattr(SimulatedSystem(scaled_config(num_cores=2)), member)
        )

"""Tests for reuse-distance analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.sim.reuse import (
    COLD,
    dst_value_stream,
    profile_stream,
    reuse_distances,
)


def test_cold_misses():
    assert list(reuse_distances([1, 2, 3])) == [COLD, COLD, COLD]


def test_immediate_reuse_distance_zero():
    assert list(reuse_distances([1, 1])) == [COLD, 0]


def test_stack_distance_counts_distinct_intervening():
    # Second 2: {3} intervened -> 1.  Second 1: {2, 3} intervened -> 2.
    assert list(reuse_distances([1, 2, 3, 2, 1])) == [COLD, COLD, COLD, 1, 2]


def test_repeats_do_not_inflate_distance():
    # 1 2 2 2 1: only one distinct line between the 1s.
    assert list(reuse_distances([1, 2, 2, 2, 1])) == [COLD, COLD, 0, 0, 1]


def test_profile_counts():
    profile = profile_stream([1, 2, 1, 2, 3, 1])
    assert profile.accesses == 6
    assert profile.cold == 3
    assert profile.reuses == 3


def test_hit_rate_matches_lru_semantics():
    # Stream where every reuse has distance 1: a 2-line cache catches all.
    profile = profile_stream([1, 2, 1, 2, 1, 2])
    assert profile.hit_rate(2) == pytest.approx(4 / 6)
    assert profile.hit_rate(1) == pytest.approx(0.0)


def test_hit_rate_is_conservative_inside_a_bucket():
    """Regression: a bucket whose upper half straddles the capacity must
    count as a miss, not a hit.

    Stream ``[1, 2, 3, 4, 1]``: the second 1 has stack distance 3, which a
    3-line LRU cache misses — but distance 3 lands in bucket 2 (covering
    [2, 4)), whose *lower* bound is below the capacity.  The optimistic
    bucketing bug counted it as a hit.
    """
    profile = profile_stream([1, 2, 3, 4, 1])
    assert profile.hit_rate(3) == 0.0
    # The whole bucket [2, 4) lies below capacity 4: now it hits.
    assert profile.hit_rate(4) == pytest.approx(1 / 5)


@given(st.lists(st.integers(min_value=0, max_value=15), max_size=120))
@settings(max_examples=50, deadline=None)
def test_hit_rate_differential_vs_direct_lru(accesses):
    """Differential: bucketed hit rate vs a direct fully-associative LRU
    simulation of the same stream.

    The bucketed estimate must never exceed the true hit rate (it is a
    lower bound), and at power-of-two capacities — where every bucket lies
    entirely on one side of the capacity — it must match exactly.
    """
    profile = profile_stream(accesses)
    for capacity in range(1, 17):
        cache: list[int] = []
        hits = 0
        for line in accesses:
            if line in cache:
                hits += 1
                cache.remove(line)
            elif len(cache) >= capacity:
                cache.pop(0)
            cache.append(line)
        true_rate = hits / len(accesses) if accesses else 0.0
        bucketed = profile.hit_rate(capacity)
        assert bucketed <= true_rate + 1e-12, (
            f"optimistic at capacity {capacity}"
        )
        if capacity & (capacity - 1) == 0:
            assert bucketed == pytest.approx(true_rate), (
                f"inexact at power-of-two capacity {capacity}"
            )


def test_empty_stream():
    profile = profile_stream([])
    assert profile.accesses == 0
    assert profile.hit_rate(8) == 0.0
    assert profile.mean_distance() == 0.0


@given(st.lists(st.integers(min_value=0, max_value=15), max_size=120))
@settings(max_examples=50, deadline=None)
def test_reuse_distances_match_reference_lru(accesses):
    """Distance < C iff a capacity-C fully-associative LRU cache hits."""
    for capacity in (1, 2, 4):
        cache: list[int] = []
        expected_hits = []
        for line in accesses:
            hit = line in cache
            expected_hits.append(hit)
            if hit:
                cache.remove(line)
            elif len(cache) >= capacity:
                cache.pop(0)
            cache.append(line)
        distances = list(reuse_distances(accesses))
        model_hits = [d != COLD and d < capacity for d in distances]
        assert model_hits == expected_hits


def test_chain_order_shortens_dst_reuse(figure1):
    """The Figure 6 vs Figure 9 contrast, as reuse distances."""
    oag = build_oag(figure1, "hyperedge", w_min=1)
    import numpy as np

    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    index_profile = profile_stream(
        dst_value_stream(figure1, [0, 1, 2, 3], line_size=8)
    )
    chain_profile = profile_stream(
        dst_value_stream(figure1, list(chains.order()), line_size=8)
    )
    # Same accesses and compulsory misses; shorter re-touch distances.
    assert chain_profile.accesses == index_profile.accesses
    assert chain_profile.cold == index_profile.cold
    assert chain_profile.mean_distance() < index_profile.mean_distance()
    # The paper's 4-entry example: chain order hits more at capacity 4.
    assert chain_profile.hit_rate(4) > index_profile.hit_rate(4)

"""Tests for the SimulatedSystem facade and the energy model."""

from __future__ import annotations

import pytest

from repro.sim.config import scaled_config
from repro.sim.layout import ArrayId
from repro.sim.null import NullSystem
from repro.sim.system import SimulatedSystem


def make_system() -> SimulatedSystem:
    return SimulatedSystem(scaled_config(num_cores=2, llc_kb=2))


def test_read_charges_memory_path():
    system = make_system()
    system.read(0, ArrayId.VERTEX_VALUE, 0)
    system.barrier()
    assert system.total_cycles > 0
    assert system.breakdown.memory_stall_cycles > 0


def test_read_serial_charges_compute():
    system = make_system()
    system.read_serial(0, ArrayId.OAG_EDGE, 0)
    system.barrier()
    assert system.breakdown.compute_cycles > 0
    assert system.breakdown.memory_stall_cycles == 0


def test_engine_read_charges_engine_side():
    system = make_system()
    system.engine_read(0, ArrayId.VERTEX_VALUE, 0)
    system.barrier()
    assert system.breakdown.engine_cycles > 0


def test_write_marks_dram_attribution():
    system = make_system()
    system.write(0, ArrayId.HYPEREDGE_VALUE, 0)
    assert system.dram_breakdown()[ArrayId.HYPEREDGE_VALUE] == 1


def test_energy_report_components():
    system = make_system()
    for i in range(50):
        system.read(0, ArrayId.VERTEX_VALUE, i)
    system.charge_compute(0, 1000)
    report = system.energy()
    assert report.dram_nj > 0
    assert report.l1_nj > 0
    assert report.core_nj == pytest.approx(1000 * system.energy_model.CORE_CYCLE_NJ)
    assert report.total_nj == pytest.approx(
        report.l1_nj + report.l2_nj + report.l3_nj + report.dram_nj + report.core_nj
    )
    assert 0.0 < report.memory_fraction < 1.0


def test_null_system_is_free():
    system = NullSystem()
    assert system.read(0, ArrayId.VERTEX_VALUE, 0) == 0
    assert system.write(0, ArrayId.VERTEX_VALUE, 0) == 0
    assert system.read_serial(0, ArrayId.OAG_EDGE, 0) == 0
    assert system.engine_read(0, ArrayId.OAG_EDGE, 0) == 0
    system.charge_compute(0, 10)
    system.charge_engine(0, 10)
    assert system.barrier() == 0.0
    assert system.total_cycles == 0.0
    assert system.dram_accesses() == 0
    assert system.hierarchy is None


def test_dram_contention_flag_inflates_memory_bound_runs():
    def run(contention: bool) -> float:
        config = scaled_config(num_cores=2, llc_kb=2).replace(
            dram_contention=contention
        )
        system = SimulatedSystem(config)
        for i in range(20_000):
            system.read(i % 2, ArrayId.VERTEX_VALUE, (i * 13) % 65536)
        system.barrier()
        return system.total_cycles

    baseline = run(contention=False)
    contended = run(contention=True)
    # Same traffic; the contention model may only slow the phase down.
    assert contended >= baseline
    assert contended > baseline  # this phase is memory-bound, so strictly


def test_dram_contention_off_matches_legacy_barrier():
    # The flag defaults off and the off-path must be arithmetically
    # identical to the pre-flag barrier (figures stay bit-identical).
    a = SimulatedSystem(scaled_config(num_cores=2, llc_kb=2))
    assert a.config.dram_contention is False
    b = SimulatedSystem(
        scaled_config(num_cores=2, llc_kb=2).replace(dram_contention=False)
    )
    for system in (a, b):
        for i in range(5_000):
            system.read(i % 2, ArrayId.VERTEX_VALUE, (i * 13) % 65536)
        system.barrier()
    assert a.total_cycles == b.total_cycles


def test_dram_writebacks_surface_on_the_facade():
    system = make_system()
    for i in range(20_000):
        system.write(i % 2, ArrayId.VERTEX_VALUE, (i * 13) % 65536)
    system.barrier()
    assert system.dram_writebacks() > 0
    breakdown = system.dram_writeback_breakdown()
    assert sum(breakdown.values()) == system.dram_writebacks()
    assert breakdown[ArrayId.VERTEX_VALUE] == system.dram_writebacks()

"""Tests for the phase timer and barrier semantics."""

from __future__ import annotations

import pytest

from repro.sim.config import scaled_config
from repro.sim.timing import PhaseTimer


def make_timer(num_cores: int = 4, mlp: float = 2.0) -> PhaseTimer:
    return PhaseTimer(scaled_config(num_cores=num_cores).replace(mlp=mlp))


def test_barrier_takes_slowest_core():
    timer = make_timer()
    timer.charge_compute(0, 100)
    timer.charge_compute(1, 300)
    phase = timer.barrier(sync_overhead=0)
    assert phase == pytest.approx(300)


def test_memory_divided_by_mlp():
    timer = make_timer(mlp=2.0)
    timer.charge_memory(0, 200)
    assert timer.core_time(0) == pytest.approx(100)


def test_engine_overlaps_with_core():
    timer = make_timer()
    timer.charge_compute(0, 100)
    timer.charge_engine(0, 80)
    assert timer.core_time(0) == pytest.approx(100)  # core-bound
    timer.charge_engine(0, 70)  # engine now 150 > core 100
    assert timer.core_time(0) == pytest.approx(150)  # engine-bound


def test_barrier_resets_per_core_state():
    timer = make_timer()
    timer.charge_compute(0, 50)
    timer.barrier(sync_overhead=0)
    assert timer.core_time(0) == 0.0


def test_breakdown_accumulates_busiest_core():
    timer = make_timer(mlp=1.0)
    timer.charge_compute(0, 10)
    timer.charge_memory(1, 500)  # busiest
    timer.barrier(sync_overhead=0)
    assert timer.breakdown.total_cycles == pytest.approx(500)
    assert timer.breakdown.memory_stall_cycles == pytest.approx(500)
    assert timer.breakdown.barriers == 1


def test_stall_fraction_bounds():
    timer = make_timer(mlp=1.0)
    timer.charge_compute(0, 100)
    timer.charge_memory(0, 100)
    timer.barrier(sync_overhead=0)
    fraction = timer.breakdown.memory_stall_fraction
    assert 0.0 < fraction < 1.0


def test_stall_fraction_zero_when_idle():
    timer = make_timer()
    assert timer.breakdown.memory_stall_fraction == 0.0


def test_sync_overhead_added():
    timer = make_timer()
    timer.charge_compute(0, 10)
    phase = timer.barrier(sync_overhead=50)
    assert phase == pytest.approx(60)

"""Tests for the phase timer and barrier semantics."""

from __future__ import annotations

import pytest

from repro.sim.config import scaled_config
from repro.sim.timing import PhaseTimer


def make_timer(num_cores: int = 4, mlp: float = 2.0) -> PhaseTimer:
    return PhaseTimer(scaled_config(num_cores=num_cores).replace(mlp=mlp))


def test_barrier_takes_slowest_core():
    timer = make_timer()
    timer.charge_compute(0, 100)
    timer.charge_compute(1, 300)
    phase = timer.barrier(sync_overhead=0)
    assert phase == pytest.approx(300)


def test_memory_divided_by_mlp():
    timer = make_timer(mlp=2.0)
    timer.charge_memory(0, 200)
    assert timer.core_time(0) == pytest.approx(100)


def test_engine_overlaps_with_core():
    timer = make_timer()
    timer.charge_compute(0, 100)
    timer.charge_engine(0, 80)
    assert timer.core_time(0) == pytest.approx(100)  # core-bound
    timer.charge_engine(0, 70)  # engine now 150 > core 100
    assert timer.core_time(0) == pytest.approx(150)  # engine-bound


def test_barrier_resets_per_core_state():
    timer = make_timer()
    timer.charge_compute(0, 50)
    timer.barrier(sync_overhead=0)
    assert timer.core_time(0) == 0.0


def test_breakdown_accumulates_busiest_core():
    timer = make_timer(mlp=1.0)
    timer.charge_compute(0, 10)
    timer.charge_memory(1, 500)  # busiest
    timer.barrier(sync_overhead=0)
    assert timer.breakdown.total_cycles == pytest.approx(500)
    assert timer.breakdown.memory_stall_cycles == pytest.approx(500)
    assert timer.breakdown.barriers == 1


def test_stall_fraction_bounds():
    timer = make_timer(mlp=1.0)
    timer.charge_compute(0, 100)
    timer.charge_memory(0, 100)
    timer.barrier(sync_overhead=0)
    fraction = timer.breakdown.memory_stall_fraction
    assert 0.0 < fraction < 1.0


def test_stall_fraction_zero_when_idle():
    timer = make_timer()
    assert timer.breakdown.memory_stall_fraction == 0.0


def test_sync_overhead_added():
    timer = make_timer()
    timer.charge_compute(0, 10)
    phase = timer.barrier(sync_overhead=50)
    assert phase == pytest.approx(60)


# -- DRAM bandwidth contention at the barrier ---------------------------------


def make_dram():
    from repro.sim.dram import DramModel

    config = scaled_config()
    return DramModel(
        num_controllers=config.dram_controllers,
        base_latency=config.dram_latency,
        line_size=config.line_size,
        bytes_per_cycle_per_controller=(
            config.dram_bytes_per_cycle_per_controller
        ),
    )


def test_barrier_without_demand_is_uncontended():
    a = make_timer()
    b = make_timer()
    for timer in (a, b):
        timer.charge_compute(0, 100)
        timer.charge_memory(0, 400)
    # Zero demanded lines: the contended path must degrade to exactly the
    # uncontended arithmetic (factor 1.0, no drain floor).
    assert a.barrier(sync_overhead=0) == b.barrier(
        sync_overhead=0, dram=make_dram(), dram_lines=0
    )


def test_contention_inflates_memory_bound_phase():
    dram = make_dram()
    results = []
    for lines in (0, 1_000, 100_000):
        timer = make_timer()
        timer.charge_memory(0, 1_000)
        results.append(
            timer.barrier(sync_overhead=0, dram=dram, dram_lines=lines)
        )
    # Monotone in demanded lines, strictly greater once demand saturates.
    assert results[0] <= results[1] <= results[2]
    assert results[2] > results[0]


def test_contended_phase_floored_at_drain_time():
    dram = make_dram()
    timer = make_timer()
    timer.charge_compute(0, 1)  # nearly idle cores
    lines = 1_000_000
    phase = timer.barrier(sync_overhead=0, dram=dram, dram_lines=lines)
    assert phase >= dram.drain_cycles(lines)


def test_drain_floor_attributed_as_memory_stall():
    """Regression: cycles the drain floor adds are memory stalls.

    A nearly idle phase floored at the channel drain time is pure
    waiting-for-memory; ``memory_stall_fraction`` (Figure 5's metric) must
    reflect that instead of under-reporting as if the cores were busy.
    """
    dram = make_dram()
    timer = make_timer()
    timer.charge_compute(0, 1)
    lines = 1_000_000
    phase = timer.barrier(sync_overhead=0, dram=dram, dram_lines=lines)
    drain = dram.drain_cycles(lines)
    assert phase == pytest.approx(drain)
    # Of the floored phase, everything beyond the busiest core's own cycle
    # is stall; the fraction approaches 1 for an idle, drain-bound phase.
    assert timer.breakdown.memory_stall_cycles == pytest.approx(drain - 1)
    assert timer.breakdown.memory_stall_fraction > 0.99


def test_drain_floor_delta_stacks_on_contended_stall():
    """The floor delta adds to (not replaces) the inflated stall cycles."""
    dram = make_dram()
    timer = make_timer(mlp=2.0)
    timer.charge_memory(0, 1_000)
    lines = 1_000_000
    timer.barrier(sync_overhead=0, dram=dram, dram_lines=lines)
    factor = dram.contention_factor(lines, 500.0)  # uncontended = 1000/2.0
    contended_stall = 1_000 * factor / 2.0
    delta = dram.drain_cycles(lines) - contended_stall
    assert delta > 0  # the floor binds in this setup
    assert timer.breakdown.memory_stall_cycles == pytest.approx(
        contended_stall + delta
    )


def test_no_dram_path_stall_accounting_unchanged():
    """``dram=None`` and ``dram_lines=0`` produce bit-identical breakdowns."""
    plain = make_timer(mlp=2.0)
    contended = make_timer(mlp=2.0)
    for timer in (plain, contended):
        timer.charge_compute(0, 100)
        timer.charge_memory(0, 400)
        timer.charge_memory(1, 900)
    a = plain.barrier(sync_overhead=25)
    b = contended.barrier(sync_overhead=25, dram=make_dram(), dram_lines=0)
    assert a == b
    assert plain.breakdown.total_cycles == contended.breakdown.total_cycles
    assert (
        plain.breakdown.memory_stall_cycles
        == contended.breakdown.memory_stall_cycles
    )
    assert (
        plain.breakdown.compute_cycles == contended.breakdown.compute_cycles
    )

"""Tests for memory-trace recording and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRank
from repro.engine.hygra import HygraEngine
from repro.sim.config import scaled_config
from repro.sim.layout import ArrayId
from repro.sim.system import SimulatedSystem
from repro.sim.trace import (
    TraceEvent,
    TracingSystem,
    load_trace,
    replay,
    save_trace,
)


@pytest.fixture
def traced_run(small_hypergraph):
    config = scaled_config(num_cores=2, llc_kb=2)
    system = TracingSystem(config)
    HygraEngine().run(PageRank(iterations=1), small_hypergraph, system)
    return system, config


def test_trace_records_accesses(traced_run):
    system, _ = traced_run
    assert len(system.trace) > 0
    kinds = {event.kind for event in system.trace}
    assert "read" in kinds and "write" in kinds


def test_tracing_does_not_change_simulation(small_hypergraph):
    config = scaled_config(num_cores=2, llc_kb=2)
    plain = SimulatedSystem(config)
    traced = TracingSystem(config)
    a = HygraEngine().run(PageRank(iterations=1), small_hypergraph, plain)
    b = HygraEngine().run(PageRank(iterations=1), small_hypergraph, traced)
    assert a.dram_accesses == b.dram_accesses
    assert a.cycles == b.cycles
    assert np.allclose(a.result, b.result)


def test_replay_reproduces_dram_counts(traced_run):
    system, config = traced_run
    hierarchy = replay(system.trace, config)
    assert hierarchy.dram_accesses() == system.dram_accesses()
    assert hierarchy.dram_breakdown() == system.dram_breakdown()


def test_replay_through_bigger_cache_misses_less(traced_run):
    system, config = traced_run
    bigger = replay(system.trace, scaled_config(num_cores=2, llc_kb=32))
    assert bigger.dram_accesses() <= system.dram_accesses()


def test_trace_file_roundtrip(traced_run, tmp_path):
    system, _ = traced_run
    path = tmp_path / "run.trace"
    save_trace(system.trace[:500], path)
    loaded = load_trace(path)
    assert loaded == system.trace[:500]
    assert isinstance(loaded[0], TraceEvent)
    assert isinstance(loaded[0].array, ArrayId)


def test_demand_writer_records_every_write():
    """The tracing system's demand_writer must not hand out the base
    class's fast closure — every per-tuple write lands in the trace."""
    config = scaled_config(num_cores=2, llc_kb=2)
    tracing = TracingSystem(config)
    reference = SimulatedSystem(config)
    writer = tracing.demand_writer(1, ArrayId.VERTEX_VALUE)
    for index in (0, 9, 9, 31):
        assert writer(index) == reference.write(1, ArrayId.VERTEX_VALUE, index)
    assert tracing.trace == [
        TraceEvent("write", 1, ArrayId.VERTEX_VALUE, index)
        for index in (0, 9, 9, 31)
    ]

"""Store concurrency: parallel writers + concurrent gc never serve a torn
artifact.

The service leans on two store properties:

- writes are atomic (tmp file + ``os.replace``), so a reader sees either a
  complete artifact or none at all;
- every read is verified against its manifest checksum, so an artifact
  caught mid-overwrite (payload newer than manifest) is discarded as a
  miss instead of served.

These tests hammer one store root from writer/reader/gc threads and assert
the invariant directly: **every successful read is byte-for-byte a payload
some writer completely wrote**.
"""

from __future__ import annotations

import json
import threading

from repro.store import ArtifactStore

KEYS = [f"contended-{i}" for i in range(4)]


def _stamped(writer_id: int, sequence: int, key: str) -> bytes:
    """A payload whose content identifies writer, sequence and key — a torn
    or cross-key read cannot masquerade as a valid one."""
    head = json.dumps({"writer": writer_id, "seq": sequence, "key": key})
    return (head + "|" + "x" * (197 * sequence % 1411)).encode("utf-8")


class TestParallelWritersNeverServeTorn:
    def _hammer(self, root, gc_bytes=None, seconds=1.5):
        complete: set[bytes] = set()
        lock = threading.Lock()
        stop = threading.Event()
        failures: list[str] = []

        def writer(writer_id: int) -> None:
            store = ArtifactStore(root)
            sequence = 0
            while not stop.is_set():
                key = KEYS[(writer_id + sequence) % len(KEYS)]
                payload = _stamped(writer_id, sequence, key)
                with lock:
                    # Registered *before* the write: the invariant is that
                    # reads only ever see fully written payloads.
                    complete.add(payload)
                store.put_bytes("results", key, payload)
                sequence += 1

        def reader(reader_id: int) -> None:
            store = ArtifactStore(root)
            reads = 0
            while not stop.is_set():
                key = KEYS[(reader_id + reads) % len(KEYS)]
                payload = store.get_bytes("results", key)
                reads += 1
                if payload is None:
                    continue  # miss/corruption-discard: legal under churn
                with lock:
                    known = payload in complete
                if not known:
                    failures.append(
                        f"torn read on {key}: {payload[:80]!r}"
                    )
                    stop.set()
                    return
                head = json.loads(payload.split(b"|", 1)[0])
                if head["key"] != key:
                    failures.append(f"cross-key read: {head} from {key}")
                    stop.set()
                    return

        def collector() -> None:
            store = ArtifactStore(root)
            while not stop.is_set():
                store.gc(gc_bytes)

        threads = [
            *(threading.Thread(target=writer, args=(i,)) for i in range(3)),
            *(threading.Thread(target=reader, args=(i,)) for i in range(2)),
        ]
        if gc_bytes is not None:
            threads.append(threading.Thread(target=collector))
        for thread in threads:
            thread.start()
        stopper = threading.Timer(seconds, stop.set)
        stopper.start()
        for thread in threads:
            thread.join(30)
        stopper.cancel()
        stop.set()
        assert not failures, failures

    def test_concurrent_writers_and_readers(self, tmp_path):
        self._hammer(tmp_path / "store")

    def test_concurrent_writers_readers_and_gc(self, tmp_path):
        """gc evicting entries out from under readers/writers must only ever
        produce clean misses, never partial artifacts."""
        self._hammer(tmp_path / "gc-store", gc_bytes=2048)


class TestCorruptionIsAMissNotAServe:
    def test_truncated_payload_is_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes("results", "k", b"full payload bytes")
        path.write_bytes(b"full")  # simulate a torn write / partial flush
        assert store.get_bytes("results", "k") is None
        assert store.stats.corruptions == 1
        assert not path.exists()  # junk removed, next put rebuilds

    def test_overwritten_payload_without_manifest_is_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes("results", "k", b"original")
        path.write_bytes(b"attacker or partial overwrite")
        assert store.get_bytes("results", "k") is None
        assert store.stats.corruptions == 1

    def test_orphan_payload_is_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes("results", "k", b"payload")
        store._manifest_path(path).unlink()
        assert store.get_bytes("results", "k") is None
        assert store.stats.corruptions == 1
        assert not path.exists()

    def test_clean_entry_survives_verification(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes("results", "k", b"payload")
        assert store.get_bytes("results", "k") == b"payload"
        assert store.stats.corruptions == 0

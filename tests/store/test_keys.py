"""Content hashes and store keys: stable, name-blind, parameter-sensitive."""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import scaled_config
from repro.store import (
    STORE_SCHEMA_VERSION,
    hypergraph_content_hash,
    resources_key,
    run_result_key,
)

EDGES = [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 6]]


def _figure1(name: str = "figure1") -> Hypergraph:
    return Hypergraph.from_hyperedge_lists(EDGES, num_vertices=7, name=name)


def test_content_hash_is_deterministic_and_name_blind():
    a = _figure1("one")
    b = _figure1("two")
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() == hypergraph_content_hash(a)
    assert len(a.content_hash()) == 64


def test_content_hash_memoized_on_instance():
    hg = _figure1()
    assert hg.content_hash() is hg.content_hash()


def test_content_hash_tracks_structure():
    base = _figure1()
    changed = Hypergraph.from_hyperedge_lists(
        [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 5]], num_vertices=7
    )
    padded = Hypergraph.from_hyperedge_lists(EDGES, num_vertices=8)
    assert base.content_hash() != changed.content_hash()
    assert base.content_hash() != padded.content_hash()


def test_resources_key_covers_every_parameter(figure1):
    h = figure1.content_hash()
    baseline = resources_key(h, 4, 3, 16)
    assert baseline == resources_key(h, 4, 3, 16)
    assert baseline != resources_key(h, 8, 3, 16)
    assert baseline != resources_key(h, 4, 5, 16)
    assert baseline != resources_key(h, 4, 3, 32)
    assert baseline != resources_key("0" * 64, 4, 3, 16)


def test_run_result_key_covers_config_and_iterations(figure1):
    h = figure1.content_hash()
    config = scaled_config()
    base = run_result_key("ChGraph", "PR", h, config, 2)
    assert base == run_result_key("ChGraph", "PR", h, config, 2)
    assert base != run_result_key("Hygra", "PR", h, config, 2)
    assert base != run_result_key("ChGraph", "BFS", h, config, 2)
    assert base != run_result_key("ChGraph", "PR", h, config, 10)
    assert base != run_result_key(
        "ChGraph", "PR", h, scaled_config(num_cores=4), 2
    )


def test_run_result_key_separates_profiled_runs(figure1):
    """A profiled run carries telemetry the plain run lacks; the store must
    never hand one out for the other."""
    h = figure1.content_hash()
    config = scaled_config()
    plain = run_result_key("ChGraph", "PR", h, config, 2)
    profiled = run_result_key("ChGraph", "PR", h, config, 2, profile=True)
    assert plain != profiled
    assert plain == run_result_key("ChGraph", "PR", h, config, 2, profile=False)


def test_schema_version_bumped_for_write_traffic():
    """v3 added DRAM write traffic to serialized run results."""
    assert STORE_SCHEMA_VERSION == 3

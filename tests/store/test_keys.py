"""Content hashes and store keys: stable, name-blind, parameter-sensitive."""

from __future__ import annotations

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import scaled_config
from repro.store import (
    STORE_SCHEMA_VERSION,
    hypergraph_content_hash,
    resources_key,
    run_result_key,
)

EDGES = [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 6]]


def _figure1(name: str = "figure1") -> Hypergraph:
    return Hypergraph.from_hyperedge_lists(EDGES, num_vertices=7, name=name)


def test_content_hash_is_deterministic_and_name_blind():
    a = _figure1("one")
    b = _figure1("two")
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() == hypergraph_content_hash(a)
    assert len(a.content_hash()) == 64


def test_content_hash_memoized_on_instance():
    hg = _figure1()
    assert hg.content_hash() is hg.content_hash()


def test_content_hash_tracks_structure():
    base = _figure1()
    changed = Hypergraph.from_hyperedge_lists(
        [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 5]], num_vertices=7
    )
    padded = Hypergraph.from_hyperedge_lists(EDGES, num_vertices=8)
    assert base.content_hash() != changed.content_hash()
    assert base.content_hash() != padded.content_hash()


def _spec(**overrides):
    from repro.harness.spec import RunSpec

    fields = dict(
        engine="ChGraph", algorithm="PR", dataset="WEB",
        config=scaled_config(), pr_iterations=2,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def test_resources_key_covers_every_parameter(figure1):
    from repro.hypergraph.pipeline import PreprocessSpec, StageSpec

    h = figure1.content_hash()
    pre = PreprocessSpec(w_min=3, d_max=16)
    baseline = resources_key(h, 4, pre)
    assert baseline == resources_key(h, 4, pre)
    assert baseline != resources_key(h, 8, pre)
    assert baseline != resources_key(h, 4, PreprocessSpec(w_min=5, d_max=16))
    assert baseline != resources_key(h, 4, PreprocessSpec(w_min=3, d_max=32))
    assert baseline != resources_key(
        h, 4, PreprocessSpec(3, 16, (StageSpec.make("identity"),))
    )
    assert baseline != resources_key("0" * 64, 4, pre)
    # ``None`` means the default record, and hashes identically to it.
    assert resources_key(h, 4) == resources_key(h, 4, PreprocessSpec())


def test_run_result_key_covers_config_and_iterations(figure1):
    h = figure1.content_hash()
    base = run_result_key(_spec(), h)
    assert base == run_result_key(_spec(), h)
    assert base != run_result_key(_spec(engine="Hygra"), h)
    assert base != run_result_key(_spec(algorithm="BFS"), h)
    assert base != run_result_key(_spec(pr_iterations=10), h)
    assert base != run_result_key(_spec(config=scaled_config(num_cores=4)), h)
    assert base != run_result_key(_spec(), "0" * 64)


def test_run_result_key_covers_preprocessing_and_check(figure1):
    """v4 closes the aliasing hole: non-default OAG parameters, pipeline
    stages, and checked runs all get distinct entries."""
    from repro.hypergraph.pipeline import PreprocessSpec, StageSpec

    h = figure1.content_hash()
    base = run_result_key(_spec(), h)
    assert base != run_result_key(
        _spec(preprocessing=PreprocessSpec(w_min=5)), h
    )
    assert base != run_result_key(
        _spec(preprocessing=PreprocessSpec(d_max=8)), h
    )
    assert base != run_result_key(
        _spec(preprocessing=PreprocessSpec(
            stages=(StageSpec.make("locality-reorder"),)
        )), h,
    )
    assert base != run_result_key(_spec(check=True, profile=True), h)
    # An explicit default record hashes like the implicit one.
    assert base == run_result_key(_spec(preprocessing=PreprocessSpec()), h)


def test_run_result_key_separates_profiled_runs(figure1):
    """A profiled run carries telemetry the plain run lacks; the store must
    never hand one out for the other."""
    h = figure1.content_hash()
    plain = run_result_key(_spec(), h)
    profiled = run_result_key(_spec(profile=True), h)
    assert plain != profiled
    assert plain == run_result_key(_spec(profile=False), h)


def test_run_result_key_requires_normalized_iterations(figure1):
    with pytest.raises(ValueError, match="pr_iterations"):
        run_result_key(_spec(pr_iterations=None), figure1.content_hash())


def test_schema_version_bumped_for_spec_keys():
    """v4: both store keys derive from RunSpec/PreprocessSpec and hash the
    full preprocessing record (v3 added DRAM write traffic)."""
    assert STORE_SCHEMA_VERSION == 4

"""Deterministic retry jitter: the backoff schedule is pinned by seed.

The schedule exists to desynchronize concurrent clients retrying against
one wedged resource (a thundering herd); determinism-by-seed is what keeps
it testable and reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.store import backoff_delays
from repro.store.pool import DEFAULT_JITTER, run_tasks


class TestBackoffDelays:
    def test_schedule_is_pinned_by_seed(self):
        """The exact schedule for seed 42: attempt i sleeps
        backoff * 2**(i-1) * (1 + jitter * u_i)."""
        rng = random.Random(42)
        expected = [
            0.5 * 2 ** attempt * (1.0 + 0.25 * rng.random())
            for attempt in range(3)
        ]
        assert backoff_delays(3, 0.5, seed=42) == expected
        # Deterministic: the same seed always yields the same schedule.
        assert backoff_delays(3, 0.5, seed=42) == expected

    def test_different_seeds_desynchronize(self):
        assert backoff_delays(3, 0.5, seed=1) != backoff_delays(3, 0.5, seed=2)

    def test_zero_jitter_is_pure_exponential(self):
        assert backoff_delays(3, 0.5, jitter=0.0, seed=7) == [0.5, 1.0, 2.0]

    def test_delays_stay_within_the_jitter_band(self):
        for seed in range(20):
            for attempt, delay in enumerate(backoff_delays(4, 0.5, seed=seed)):
                base = 0.5 * 2 ** attempt
                assert base <= delay <= base * (1 + DEFAULT_JITTER)

    @pytest.mark.parametrize("retries, backoff", [(0, 0.5), (2, 0.0), (-1, 1.0)])
    def test_degenerate_inputs_sleep_zero(self, retries, backoff):
        delays = backoff_delays(retries, backoff, seed=3)
        assert delays == [0.0] * max(0, retries)


def _always_fail(payload):
    raise ValueError(f"injected failure for {payload}")


class TestRunTasksUsesTheSchedule:
    def test_retry_sleeps_follow_the_seeded_schedule(self, monkeypatch):
        import repro.store.pool as pool_mod

        slept = []
        monkeypatch.setattr(pool_mod.time, "sleep", slept.append)
        outcomes = run_tasks(
            _always_fail,
            ["a", "b"],
            workers=2,
            retries=2,
            backoff=0.01,
            jitter_seed=123,
            inline_fallback=False,
        )
        assert slept == backoff_delays(2, 0.01, seed=123)
        assert all(o.value is None for o in outcomes)
        assert all("injected failure" in o.errors[-1] for o in outcomes)

"""Prewarming and harness wiring: parallel workers sharing one store dir,
the Runner's persistent memo, and the dataset-cache test hook."""

from __future__ import annotations

import numpy as np

from repro.engine import GlaResources
from repro.harness.datasets import clear_dataset_cache, hypergraph_dataset
from repro.harness.runner import Runner
from repro.sim.config import scaled_config
from repro.store import ArtifactStore, PrewarmJob, prewarm, prewarm_jobs


def test_prewarm_jobs_cross_product():
    jobs = prewarm_jobs(["WEB", "FS"], [4, 8], w_min=5)
    assert len(jobs) == 4
    assert jobs[0] == PrewarmJob(dataset="WEB", num_cores=4, w_min=5)
    assert {(j.dataset, j.num_cores) for j in jobs} == {
        ("WEB", 4), ("WEB", 8), ("FS", 4), ("FS", 8),
    }


def test_prewarm_inline_builds_then_skips(tmp_path):
    jobs = prewarm_jobs(["WEB"], [4])
    first = prewarm(tmp_path, jobs, workers=1)
    assert [r.built for r in first] == [True]
    assert first[0].payload_bytes > 0
    second = prewarm(tmp_path, jobs, workers=1)
    assert [r.built for r in second] == [False]
    assert second[0].key == first[0].key


def test_concurrent_prewarm_into_one_store_dir(tmp_path):
    """Multiple worker processes writing the same directory: every artifact
    lands intact and is loadable afterwards."""
    jobs = prewarm_jobs(["WEB", "FS"], [2, 4])
    reports = prewarm(tmp_path, jobs, workers=2)
    assert len(reports) == 4
    assert all(r.payload_bytes > 0 for r in reports)
    store = ArtifactStore(tmp_path)
    assert len(store.ls()) == 4
    for report in reports:
        loaded = store.get_resources(report.key)
        assert loaded is not None
        assert loaded.num_cores == report.job.num_cores
    # A second pass over the same combos is all cache hits, in any worker.
    again = prewarm(tmp_path, jobs, workers=2)
    assert [r.built for r in again] == [False] * 4


def test_prewarmed_artifacts_match_direct_builds(tmp_path):
    report, = prewarm(tmp_path, [PrewarmJob(dataset="WEB", num_cores=4)], workers=1)
    loaded = ArtifactStore(tmp_path).get_resources(report.key)
    built = GlaResources.build(hypergraph_dataset("WEB"), 4)
    for a, b in zip(
        (*built.vertex_oags, *built.hyperedge_oags),
        (*loaded.vertex_oags, *loaded.hyperedge_oags),
        strict=True,
    ):
        assert np.array_equal(a.csr.offsets, b.csr.offsets)
        assert np.array_equal(a.csr.indices, b.csr.indices)
        assert np.array_equal(a.csr.weights, b.csr.weights)
    assert built.build_operations == loaded.build_operations


def test_clear_dataset_cache_forces_regeneration():
    first = hypergraph_dataset("WEB")
    assert hypergraph_dataset("WEB") is first
    clear_dataset_cache()
    second = hypergraph_dataset("WEB")
    assert second is not first
    # Same generator parameters → same content, so cache keys are unchanged.
    assert second.content_hash() == first.content_hash()


def test_runner_memo_keys_on_full_parameter_tuple():
    """Runners that differ in w_min must not alias each other's resources
    (the old memo keyed only on (name, num_cores))."""
    hypergraph = hypergraph_dataset("WEB")
    config = scaled_config(num_cores=4)
    narrow = Runner(w_min=30)
    default = Runner()
    wide = narrow.resources(hypergraph, config)
    base = default.resources(hypergraph, config)
    assert wide.w_min == 30 and base.w_min == 3
    assert wide.storage_bytes() < base.storage_bytes()
    # Within one runner, a repeat resolves from the memo.
    assert narrow.resources(hypergraph, config) is wide


def test_runner_persistent_cache_across_instances(tmp_path):
    cold = Runner(pr_iterations=1, cache_dir=tmp_path)
    config = scaled_config(num_cores=4, llc_kb=2)
    first = cold.run("ChGraph", "BFS", "WEB", config)
    assert cold.store.stats.writes >= 2  # resources + run result

    warm = Runner(pr_iterations=1, cache_dir=tmp_path)
    second = warm.run("ChGraph", "BFS", "WEB", config)
    assert warm.store.stats.hits >= 1
    assert warm.store.stats.writes == 0
    assert np.array_equal(first.result, second.result)
    assert first.cycles == second.cycles
    assert first.dram_by_array == second.dram_by_array


def test_runner_without_cache_dir_has_no_store(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert Runner().store is None


def test_runner_env_var_opt_in(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runner = Runner()
    assert runner.store is not None
    assert runner.store.root == tmp_path

"""Serialization round-trips are bit-identical, and loads are trustworthy:
a run with loaded resources equals a run with freshly built ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.engine import ChGraphEngine, GlaResources
from repro.engine.result import RunResult
from repro.sim.config import scaled_config
from repro.sim.layout import ArrayId
from repro.sim.observe import InstrumentedSystem
from repro.sim.system import SimulatedSystem
from repro.store import ArtifactStore, SerializationError
from repro.store.serialize import (
    resources_from_bytes,
    resources_to_bytes,
    run_result_from_json,
    run_result_to_json,
)


def make_system() -> SimulatedSystem:
    return SimulatedSystem(scaled_config(num_cores=4, llc_kb=2))


def _assert_identical(built: GlaResources, loaded: GlaResources) -> None:
    assert loaded.num_cores == built.num_cores
    assert loaded.w_min == built.w_min
    assert loaded.d_max == built.d_max
    assert loaded.build_operations == built.build_operations
    assert loaded.build_seconds == built.build_seconds
    assert loaded.fast == built.fast
    assert loaded.storage_bytes() == built.storage_bytes()
    for a, b in zip(
        (*built.vertex_oags, *built.hyperedge_oags),
        (*loaded.vertex_oags, *loaded.hyperedge_oags),
        strict=True,
    ):
        assert a.side == b.side
        assert a.first_id == b.first_id
        assert a.w_min == b.w_min
        assert a.build_operations == b.build_operations
        assert np.array_equal(a.csr.offsets, b.csr.offsets)
        assert np.array_equal(a.csr.indices, b.csr.indices)
        assert np.array_equal(a.csr.weights, b.csr.weights)
        assert b.is_weight_descending() == a.is_weight_descending()


def test_resources_bytes_roundtrip(small_hypergraph):
    built = GlaResources.build(small_hypergraph, 4)
    _assert_identical(built, resources_from_bytes(resources_to_bytes(built)))


def test_resources_file_roundtrip(small_hypergraph, tmp_path):
    built = GlaResources.build(small_hypergraph, 3)
    path = tmp_path / "resources.npz"
    built.save(path)
    _assert_identical(built, GlaResources.load(path))


def test_resources_load_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"not an npz at all")
    with pytest.raises(SerializationError):
        GlaResources.load(path)


def test_loaded_resources_drive_identical_runs(small_hypergraph):
    built = GlaResources.build(small_hypergraph, 4)
    loaded = resources_from_bytes(resources_to_bytes(built))
    fresh = ChGraphEngine(built).run(
        PageRank(iterations=2), small_hypergraph, make_system()
    )
    warmed = ChGraphEngine(loaded).run(
        PageRank(iterations=2), small_hypergraph, make_system()
    )
    assert np.array_equal(fresh.result, warmed.result)
    assert fresh.cycles == warmed.cycles
    assert fresh.dram_accesses == warmed.dram_accesses
    assert fresh.dram_by_array == warmed.dram_by_array


def test_run_result_json_roundtrip(small_hypergraph):
    resources = GlaResources.build(small_hypergraph, 4)
    result = ChGraphEngine(resources).run(
        PageRank(iterations=2), small_hypergraph, make_system()
    )
    result.extra["note"] = "kept"
    result.extra["unserializable"] = object()
    loaded = run_result_from_json(run_result_to_json(result))
    assert isinstance(loaded, RunResult)
    assert loaded.engine == result.engine
    assert loaded.algorithm == result.algorithm
    assert loaded.dataset == result.dataset
    assert loaded.iterations == result.iterations
    assert loaded.cycles == result.cycles
    assert loaded.compute_cycles == result.compute_cycles
    assert loaded.memory_stall_cycles == result.memory_stall_cycles
    assert loaded.dram_accesses == result.dram_accesses
    assert np.array_equal(loaded.result, result.result)
    assert loaded.result.dtype == result.result.dtype
    assert np.array_equal(loaded.vertex_values, result.vertex_values)
    assert np.array_equal(loaded.hyperedge_values, result.hyperedge_values)
    assert loaded.dram_by_array == result.dram_by_array
    assert all(isinstance(k, ArrayId) for k in loaded.dram_by_array)
    assert loaded.dram_writebacks == result.dram_writebacks
    assert loaded.dram_writebacks_by_array == result.dram_writebacks_by_array
    assert all(
        isinstance(k, ArrayId) for k in loaded.dram_writebacks_by_array
    )
    assert loaded.chain_stats == result.chain_stats
    assert loaded.extra == {"note": "kept"}
    assert loaded.dram_by_group == result.dram_by_group


def test_profiled_run_result_roundtrips_with_telemetry(small_hypergraph):
    resources = GlaResources.build(small_hypergraph, 4)
    system = InstrumentedSystem.profiled(make_system())
    result = ChGraphEngine(resources).run(
        PageRank(iterations=2), small_hypergraph, system
    )
    assert result.telemetry is not None
    loaded = run_result_from_json(run_result_to_json(result))
    assert loaded.telemetry is not None
    assert loaded.telemetry.to_json() == result.telemetry.to_json()
    assert set(loaded.telemetry.phases) == {"hyperedge", "vertex"}
    restored = loaded.telemetry.phases["hyperedge"]
    original = result.telemetry.phases["hyperedge"]
    assert restored.cycles == original.cycles
    assert restored.dram_by_array == original.dram_by_array
    assert all(isinstance(k, ArrayId) for k in restored.dram_by_array)
    assert loaded.telemetry.fifo == result.telemetry.fifo
    assert (
        loaded.telemetry.mean_frontier_density
        == result.telemetry.mean_frontier_density
    )
    # An unprofiled result still round-trips with telemetry absent.
    plain = ChGraphEngine(resources).run(
        PageRank(iterations=2), small_hypergraph, make_system()
    )
    assert run_result_from_json(run_result_to_json(plain)).telemetry is None


def test_run_result_schema_mismatch_rejected():
    with pytest.raises(SerializationError):
        run_result_from_json({"schema": -1, "kind": "run_result"})
    with pytest.raises(SerializationError):
        run_result_from_json({"schema": 1, "kind": "something_else"})


def test_store_typed_helpers_survive_corrupt_decodes(small_hypergraph, tmp_path):
    """A payload whose checksum passes but whose content is junk still
    degrades to a miss (rebuild), never an exception."""
    store = ArtifactStore(tmp_path)
    store.put_bytes("resources", "bad", b"checksummed but not an npz")
    assert store.get_resources("bad") is None
    assert store.stats.corruptions == 1
    store.put_bytes("results", "bad", b"checksummed but not json")
    assert store.get_run_result("bad") is None
    assert store.stats.corruptions == 2
    assert store.stats.hits == 0

"""The blob layer: atomic writes, checksum verification, GC, stats."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.store import STORE_SCHEMA_VERSION, ArtifactStore


def test_roundtrip_and_stats(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.get_bytes("resources", "k1") is None
    store.put_bytes("resources", "k1", b"payload")
    assert store.get_bytes("resources", "k1") == b"payload"
    assert store.stats.misses == 1
    assert store.stats.writes == 1
    assert store.stats.hits == 1


def test_unknown_kind_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        store.put_bytes("nonsense", "k", b"x")


def test_truncated_payload_is_a_miss_and_deleted(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put_bytes("resources", "k1", b"full payload bytes")
    path.write_bytes(b"full pay")  # truncate
    assert store.get_bytes("resources", "k1") is None
    assert store.stats.corruptions == 1
    assert not path.exists()
    assert not path.with_name(path.name + ".manifest").exists()


def test_tampered_manifest_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put_bytes("results", "k2", b"{}")
    manifest_path = path.with_name(path.name + ".manifest")
    manifest = json.loads(manifest_path.read_bytes())
    manifest["checksum"] = "sha256:" + "0" * 64
    manifest_path.write_text(json.dumps(manifest))
    assert store.get_bytes("results", "k2") is None
    assert store.stats.corruptions == 1


def test_schema_drift_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put_bytes("results", "k3", b"{}")
    manifest_path = path.with_name(path.name + ".manifest")
    manifest = json.loads(manifest_path.read_bytes())
    manifest["schema"] = STORE_SCHEMA_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    assert store.get_bytes("results", "k3") is None


def test_orphan_payload_without_manifest_is_cleaned(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put_bytes("resources", "k4", b"data")
    path.with_name(path.name + ".manifest").unlink()
    assert store.get_bytes("resources", "k4") is None
    assert not path.exists()
    assert store.stats.corruptions == 1


def test_ls_and_clear(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put_bytes("resources", "a", b"xx")
    store.put_bytes("results", "b", b"{}")
    entries = store.ls()
    assert {(e.kind, e.key) for e in entries} == {("resources", "a"), ("results", "b")}
    assert store.disk_bytes() == sum(e.size_bytes for e in entries)
    assert store.clear() == 2
    assert store.ls() == []


def test_gc_evicts_oldest_first(tmp_path):
    store = ArtifactStore(tmp_path)
    paths = {}
    for i, key in enumerate(("old", "mid", "new")):
        paths[key] = store.put_bytes("resources", key, bytes(4096))
        # Space the mtimes out explicitly; filesystem timestamps may be coarse.
        os.utime(paths[key], (time.time() - 100 + i, time.time() - 100 + i))
    sizes = {e.key: e.size_bytes for e in store.ls()}
    keep_two = sizes["mid"] + sizes["new"]
    assert store.gc(keep_two) == 1
    assert not paths["old"].exists()
    assert paths["mid"].exists() and paths["new"].exists()
    assert store.stats.evictions == 1


def test_size_bound_triggers_gc_on_write(tmp_path):
    store = ArtifactStore(tmp_path, max_bytes=10 * 1024)
    old = store.put_bytes("resources", "old", bytes(6 * 1024))
    os.utime(old, (time.time() - 100, time.time() - 100))
    store.put_bytes("resources", "new", bytes(6 * 1024))
    assert not old.exists()
    assert store.get_bytes("resources", "new") is not None


def test_hit_refreshes_mtime_for_lru(tmp_path):
    store = ArtifactStore(tmp_path)
    hot = store.put_bytes("resources", "hot", bytes(2048))
    cold = store.put_bytes("resources", "cold", bytes(2048))
    past = time.time() - 100
    os.utime(hot, (past, past))
    os.utime(cold, (past + 1, past + 1))
    store.get_bytes("resources", "hot")  # touch
    sizes = {e.key: e.size_bytes for e in store.ls()}
    store.gc(sizes["hot"])
    assert hot.exists() and not cold.exists()

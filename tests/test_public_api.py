"""The public API surface: exports exist and __all__ lists are honest."""

from __future__ import annotations

import importlib

import pytest

MODULES = [
    "repro",
    "repro.algorithms",
    "repro.baselines",
    "repro.chgraph",
    "repro.core",
    "repro.engine",
    "repro.harness",
    "repro.hypergraph",
    "repro.sim",
    "repro.store",
    "repro.service",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_top_level_convenience_imports():
    import repro

    for name in (
        "Hypergraph", "Csr", "Frontier",
        "HygraEngine", "SoftwareGlaEngine", "ChGraphEngine", "GlaResources",
        "PageRank", "Bfs", "ConnectedComponents", "KCore",
        "MaximalIndependentSet", "BetweennessCentrality", "Sssp", "Adsorption",
        "RunResult",
    ):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_docstrings_present():
    """Every public module and class in the core packages is documented."""
    import inspect

    for module_name in MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"{module_name}.{name} lacks a docstring"
